//! The two-die MPSoC stack family: five layers, two jointly optimized
//! cavities.

use super::load::MpsocLoad;
use crate::design::{optimize_resumed, DesignWarmStart, OptimizationConfig};
use crate::transient::{
    sample_widths_um, CavityProfiles, EpochCandidate, ModulatedStack, ModulationController,
    ModulationPolicy,
};
use crate::{bridge, CoreError, Result};
use liquamod_floorplan::arch::Architecture;
use liquamod_floorplan::FluxGrid;
use liquamod_grid_sim::solver::SolverOptions;
use liquamod_grid_sim::{CavitySpec, Material, Stack, StackBuilder, StepperKind};
use liquamod_thermal_model::{
    ChannelColumn, HeatProfile, Model, ModelParams, SolveOptions, SolveWorkspace, WidthProfile,
};
use liquamod_units::Length;

/// Configuration of one MPSoC modulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct MpsocConfig {
    /// Model parameters (geometry, coolant, flow, width range).
    pub params: ModelParams,
    /// Optimizer configuration used at each modulation epoch (`fd_threads`
    /// is pinned to 1 inside the family, like every sweep path).
    pub optimizer: OptimizationConfig,
    /// Channel columns across the flow (`nx`): the finite-volume stack's
    /// channel count and the rasterization width. Full physical fidelity is
    /// `die_width / pitch` (100 for the Niagara dies at the paper's 100 µm
    /// pitch); smaller values coarsen both models consistently.
    pub nx: usize,
    /// Cells along the flow direction (rasterization and stack).
    pub nz: usize,
    /// Channel groups per cavity for the §III model reduction ("combine two
    /// or more channels under a single set of top and bottom nodes"); the
    /// optimizer controls one width profile per group per cavity. Must
    /// divide `nx`.
    pub n_groups: usize,
    /// Backward-Euler time step, seconds.
    pub dt_seconds: f64,
    /// Linear-solver controls for each implicit step.
    pub solver: SolverOptions,
    /// Integrator backend for the closed-loop stepping (backward Euler by
    /// default; [`StepperKind::Exponential`] is the fast path).
    pub stepper: StepperKind,
}

impl MpsocConfig {
    /// A configuration sized for CI and the bench `mpsoc` mode: full
    /// 100-channel fidelity across the flow, a 0.5 mm cell grid along it,
    /// four channel groups per cavity and a 3-segment control profile.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            params: ModelParams::date2012(),
            optimizer: OptimizationConfig {
                segments: 3,
                mesh_intervals: 48,
                ..OptimizationConfig::fast()
            },
            nx: 100,
            nz: 22,
            n_groups: 4,
            dt_seconds: 2e-3,
            solver: SolverOptions::default(),
            stepper: StepperKind::BackwardEuler,
        }
    }

    /// The configuration with the per-channel coolant flow scaled by
    /// `scale` — the per-stack budget hook. Sweep variants use it for their
    /// flow axis, and the fleet layer ([`crate::fleet`]) drives it with
    /// allocator decisions: a stack's share of the shared pump budget *is*
    /// the scale handed to this hook, so nothing else in the stack family
    /// needs to know budgets exist. A scale of exactly 1.0 returns the
    /// configuration unchanged.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when `scale` is not positive and finite.
    pub fn with_flow_scale(&self, scale: f64) -> Result<Self> {
        let mut config = self.clone();
        config.params.flow_rate_per_channel =
            crate::transient::scale_flow(self.params.flow_rate_per_channel, scale)?;
        Ok(config)
    }

    /// The configuration with the coolant inlet temperature offset by
    /// `delta_k` kelvin — the fault-injection hook for inlet excursions
    /// ([`crate::faults`]): a plant built from the offset configuration runs
    /// at the *true* (excursed) inlet while a fault-oblivious controller
    /// keeps optimizing against the nominal one. An offset of exactly 0.0
    /// returns the configuration bitwise unchanged (adding zero is a float
    /// identity), so healthy paths cannot drift.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when `delta_k` is not finite or the
    /// offset inlet would be non-positive (absolute zero or below).
    pub fn with_inlet_offset(&self, delta_k: f64) -> Result<Self> {
        if !delta_k.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: format!("inlet offset must be finite, got {delta_k}"),
            });
        }
        let mut config = self.clone();
        config.params.inlet_temperature = self.params.inlet_temperature
            + liquamod_units::TemperatureDifference::from_kelvin(delta_k);
        if config.params.inlet_temperature.si() <= 0.0 {
            return Err(CoreError::InvalidConfig {
                what: format!(
                    "inlet offset {delta_k} K pushes the inlet to {} K",
                    config.params.inlet_temperature.as_kelvin()
                ),
            });
        }
        Ok(config)
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.n_groups == 0 || self.nx == 0 || !self.nx.is_multiple_of(self.n_groups) {
            return Err(CoreError::InvalidConfig {
                what: format!(
                    "{} groups must evenly divide {} channel columns",
                    self.n_groups, self.nx
                ),
            });
        }
        if self.nz == 0 {
            return Err(CoreError::InvalidConfig {
                what: "nz must be ≥ 1".into(),
            });
        }
        if !(self.dt_seconds.is_finite() && self.dt_seconds > 0.0) {
            return Err(CoreError::InvalidConfig {
                what: format!("dt must be positive, got {}", self.dt_seconds),
            });
        }
        Ok(())
    }
}

/// The two-die MPSoC stack family (see the [module docs](crate::mpsoc) for
/// the layer diagram): implements [`ModulatedStack`] so the stack-generic
/// [`ModulationController`] can drive Fig. 7 architectures through the
/// transient loop.
#[derive(Debug, Clone)]
pub struct MpsocModulated {
    config: MpsocConfig,
    /// Epoch optimizer with `fd_threads` pinned to 1.
    opt_config: OptimizationConfig,
    solve: SolveOptions,
    die_width: Length,
    die_length: Length,
}

impl MpsocModulated {
    /// Builds the family for a die outline.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when the configuration is inconsistent
    /// (groups not dividing columns, empty grid, non-positive `dt`).
    pub fn new(die_width: Length, die_length: Length, config: MpsocConfig) -> Result<Self> {
        config.validate()?;
        if !(die_width.si() > 0.0 && die_length.si() > 0.0) {
            return Err(CoreError::InvalidConfig {
                what: "die extents must be positive".into(),
            });
        }
        Ok(Self {
            opt_config: OptimizationConfig {
                fd_threads: 1,
                ..config.optimizer.clone()
            },
            solve: SolveOptions::with_mesh_intervals(config.optimizer.mesh_intervals),
            die_width,
            die_length,
            config,
        })
    }

    /// [`MpsocModulated::new`] with the die outline taken from an
    /// architecture's top die (both dies share it by construction).
    ///
    /// # Errors
    ///
    /// Same as [`MpsocModulated::new`].
    pub fn for_arch(arch: &Architecture, config: MpsocConfig) -> Result<Self> {
        Self::new(arch.top_die().width(), arch.top_die().depth(), config)
    }

    /// The configuration this family was built from.
    #[must_use]
    pub fn config(&self) -> &MpsocConfig {
        &self.config
    }

    /// Wraps the family in a [`ModulationController`] using the config's
    /// clock and solver.
    ///
    /// # Errors
    ///
    /// Propagates [`ModulationController::for_stack`] validation.
    pub fn controller(
        self,
        policy: ModulationPolicy,
    ) -> Result<ModulationController<MpsocModulated>> {
        let dt = self.config.dt_seconds;
        let solver = self.config.solver.clone();
        let stepper = self.config.stepper.clone();
        Ok(ModulationController::for_stack(self, dt, solver, policy)?.with_stepper(stepper))
    }

    fn group_size(&self) -> usize {
        self.config.nx / self.config.n_groups
    }

    /// One group's per-channel heat profile from a die grid, scaled by
    /// `factor` (the same aggregation the steady scenario uses).
    fn group_heat(&self, grid: &FluxGrid, group: usize, factor: f64) -> HeatProfile {
        bridge::group_heat_profile(grid, group, self.group_size(), factor)
    }

    /// The joint two-cavity reduced-order model for one phase's workload:
    /// columns `0..n_groups` are cavity 1 (bottom die below it, top die
    /// above), columns `n_groups..2·n_groups` are cavity 2 (top die below,
    /// the unpowered cap above). The top die borders both cavities, so its
    /// heat is split evenly between them — total model power equals total
    /// die power, and one optimization couples all `2·n_groups` profiles
    /// through the shared objective and the Eq. 10 equal-pressure
    /// constraint (one pump feeds both cavities).
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn reduced_model(&self, load: &MpsocLoad) -> Result<Model> {
        let g = self.config.n_groups;
        let gs = self.group_size();
        let mut columns = Vec::with_capacity(2 * g);
        for group in 0..g {
            columns.push(
                ChannelColumn::new(WidthProfile::uniform(self.config.params.w_max))
                    .with_group_size(gs)
                    .with_heat_bottom(self.group_heat(&load.bottom, group, 1.0))
                    .with_heat_top(self.group_heat(&load.top, group, 0.5)),
            );
        }
        for group in 0..g {
            columns.push(
                ChannelColumn::new(WidthProfile::uniform(self.config.params.w_max))
                    .with_group_size(gs)
                    .with_heat_bottom(self.group_heat(&load.top, group, 0.5)),
            );
        }
        Ok(Model::new(
            self.config.params.clone(),
            self.die_length,
            columns,
        )?)
    }

    fn check_load(&self, load: &MpsocLoad) -> Result<()> {
        if load.dims() != (self.config.nx, self.config.nz) {
            return Err(CoreError::InvalidConfig {
                what: format!(
                    "load grid {:?} does not match the configured {}x{}",
                    load.dims(),
                    self.config.nx,
                    self.config.nz
                ),
            });
        }
        Ok(())
    }
}

impl ModulatedStack for MpsocModulated {
    type Load = MpsocLoad;

    fn uniform_widths(&self) -> CavityProfiles {
        vec![vec![WidthProfile::uniform(self.config.params.w_max); self.config.n_groups]; 2]
    }

    fn load_is_idle(&self, load: &MpsocLoad) -> bool {
        load.max_flux_w_per_cm2() <= 0.0
    }

    fn build_stack(&self, load: &MpsocLoad, widths: &CavityProfiles) -> Result<Stack> {
        self.check_load(load)?;
        let params = &self.config.params;
        let cavity = |profiles: &[WidthProfile]| CavitySpec {
            height: params.h_c,
            coolant: params.coolant.clone(),
            flow_rate_per_channel: params.flow_rate_per_channel,
            nusselt: params.nusselt,
            wall_material: Material::silicon(),
            widths: bridge::cavity_widths_from_profiles(
                profiles,
                self.group_size(),
                self.die_length,
                self.config.nz,
            ),
        };
        let stack = StackBuilder::new(
            self.die_width,
            self.die_length,
            self.config.nx,
            self.config.nz,
        )
        .inlet_temperature(params.inlet_temperature)
        .silicon_layer("bottom-die", params.h_si)
        .powered_by(bridge::power_map_from_grid(&load.bottom))
        .microchannel_cavity_with(cavity(&widths[0]))
        .silicon_layer("top-die", params.h_si)
        .powered_by(bridge::power_map_from_grid(&load.top))
        .microchannel_cavity_with(cavity(&widths[1]))
        .silicon_layer("cap", params.h_si)
        .build()?;
        Ok(stack)
    }

    fn optimize_epoch(
        &self,
        load: &MpsocLoad,
        incumbent: &CavityProfiles,
        warm: Option<&DesignWarmStart>,
        ws: &mut SolveWorkspace,
    ) -> Result<EpochCandidate> {
        self.check_load(load)?;
        let model = self.reduced_model(load)?;
        let (outcome, next_warm) = optimize_resumed(&model, &self.opt_config, warm)?;
        let gradient_k = outcome.solution.thermal_gradient().as_kelvin();
        // Score the incumbent on the same model (columns in cavity-major
        // order, matching the candidate split below).
        let mut incumbent_model = model;
        for (c, profile) in incumbent.iter().flatten().enumerate() {
            incumbent_model.set_width_profile(c, profile.clone())?;
        }
        let incumbent_gradient_k = incumbent_model
            .solve_with(&self.solve, ws)?
            .thermal_gradient()
            .as_kelvin();
        // Split the jointly optimized columns back into per-cavity profiles.
        let g = self.config.n_groups;
        let mut widths = outcome.widths;
        let second = widths.split_off(g);
        Ok(EpochCandidate {
            widths: vec![widths, second],
            warm: next_warm,
            gradient_k,
            incumbent_gradient_k,
            evaluations: outcome.evaluations,
        })
    }

    fn sample_widths_um(&self, widths: &CavityProfiles) -> Vec<Vec<f64>> {
        sample_widths_um(
            widths.iter().flatten(),
            self.opt_config.segments,
            self.die_length,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquamod_floorplan::{arch, PowerLevel};

    /// A deliberately coarse configuration for unit tests: 20 columns in 2
    /// groups, 11 cells along the flow.
    pub(super) fn tiny_config() -> MpsocConfig {
        MpsocConfig {
            optimizer: OptimizationConfig {
                segments: 2,
                mesh_intervals: 32,
                ..OptimizationConfig::fast()
            },
            nx: 20,
            nz: 11,
            n_groups: 2,
            ..MpsocConfig::fast()
        }
    }

    #[test]
    fn config_validation() {
        assert!(MpsocConfig {
            n_groups: 3,
            ..tiny_config()
        }
        .validate()
        .is_err());
        assert!(MpsocConfig {
            nz: 0,
            ..tiny_config()
        }
        .validate()
        .is_err());
        assert!(MpsocConfig {
            dt_seconds: -1.0,
            ..tiny_config()
        }
        .validate()
        .is_err());
        assert!(MpsocModulated::for_arch(&arch::arch1(), tiny_config()).is_ok());
    }

    #[test]
    fn stack_has_five_layers_and_conserves_power() {
        let family = MpsocModulated::for_arch(&arch::arch1(), tiny_config()).unwrap();
        let load = MpsocLoad::from_arch(&arch::arch1(), PowerLevel::Peak, 20, 11);
        let stack = family.build_stack(&load, &family.uniform_widths()).unwrap();
        assert_eq!(stack.n_layers(), 5);
        assert_eq!(stack.dims(), (20, 11));
        assert_eq!(
            stack.layer_names(),
            vec!["bottom-die", "<cavity>", "top-die", "<cavity>", "cap"]
        );
        let expected = load.total_power().as_watts();
        let got = stack.total_power().as_watts();
        assert!(
            (got - expected).abs() / expected < 1e-9,
            "stack {got} W vs dies {expected} W"
        );
        // A mismatched raster is rejected.
        let coarse = MpsocLoad::from_arch(&arch::arch1(), PowerLevel::Peak, 10, 11);
        assert!(family
            .build_stack(&coarse, &family.uniform_widths())
            .is_err());
    }

    #[test]
    fn reduced_model_conserves_power_and_splits_the_shared_die() {
        let family = MpsocModulated::for_arch(&arch::arch1(), tiny_config()).unwrap();
        let load = MpsocLoad::from_arch(&arch::arch1(), PowerLevel::Peak, 20, 11);
        let model = family.reduced_model(&load).unwrap();
        assert_eq!(model.columns().len(), 4, "2 groups x 2 cavities");
        let model_power: f64 = model
            .columns()
            .iter()
            .map(|c| {
                c.heat_top().total_power(model.length()).as_watts()
                    + c.heat_bottom().total_power(model.length()).as_watts()
            })
            .sum();
        let die_power = load.total_power().as_watts();
        assert!(
            (model_power - die_power).abs() / die_power < 1e-9,
            "model {model_power} W vs dies {die_power} W"
        );
        // Cavity 2's columns carry only (half) the top die: no top-layer heat.
        let g = 2;
        for c in &model.columns()[g..] {
            assert_eq!(c.heat_top().total_power(model.length()).as_watts(), 0.0);
        }
    }

    #[test]
    fn epoch_candidate_beats_uniform_incumbent() {
        let family = MpsocModulated::for_arch(&arch::arch1(), tiny_config()).unwrap();
        let load = MpsocLoad::from_arch(&arch::arch1(), PowerLevel::Peak, 20, 11);
        let mut ws = SolveWorkspace::new();
        let cand = family
            .optimize_epoch(&load, &family.uniform_widths(), None, &mut ws)
            .unwrap();
        assert_eq!(cand.widths.len(), 2);
        assert_eq!(cand.widths[0].len(), 2);
        assert!(cand.evaluations > 0);
        assert!(
            cand.gradient_k <= cand.incumbent_gradient_k,
            "optimizing from the uniform incumbent must not be worse: \
             {} K vs {} K",
            cand.gradient_k,
            cand.incumbent_gradient_k
        );
        // Samples cover every (cavity, group) pair.
        let sampled = family.sample_widths_um(&cand.widths);
        assert_eq!(sampled.len(), 4);
        assert_eq!(sampled[0].len(), 2);
    }
}
