//! MPSoC workloads: rasterized two-die flux-grid pairs and their traces.

use crate::{CoreError, Result};
use liquamod_floorplan::arch::Architecture;
use liquamod_floorplan::trace::{self, PowerTrace};
use liquamod_floorplan::{FluxGrid, PowerLevel};
use liquamod_units::Power;

/// One phase's workload for a two-die stack: the rasterized heat-flux grids
/// of both dies (same grid, same die outline).
#[derive(Debug, Clone, PartialEq)]
pub struct MpsocLoad {
    /// Top-die flux grid.
    pub top: FluxGrid,
    /// Bottom-die flux grid.
    pub bottom: FluxGrid,
}

/// A time-varying two-die workload (what the MPSoC controller consumes).
pub type MpsocTrace = PowerTrace<MpsocLoad>;

impl MpsocLoad {
    /// Pairs two die grids, validating that they describe the same die and
    /// grid (the stack has one outline and one cell grid for all layers).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] on mismatched grid dimensions or die
    /// extents.
    pub fn new(top: FluxGrid, bottom: FluxGrid) -> Result<Self> {
        check_pair(&top, &bottom)?;
        Ok(Self { top, bottom })
    }

    /// Rasterizes both dies of an architecture at one power level.
    ///
    /// # Panics
    ///
    /// Panics when the architecture's dies disagree on outline — an
    /// [`Architecture`] whose dies cannot stack is a construction bug,
    /// reported immediately (matching the trace constructors' convention).
    #[must_use]
    pub fn from_arch(arch: &Architecture, level: PowerLevel, nx: usize, nz: usize) -> Self {
        Self::new(
            arch.top_die().rasterize(nx, nz, level),
            arch.bottom_die().rasterize(nx, nz, level),
        )
        .unwrap_or_else(|e| panic!("architecture '{}' dies cannot stack: {e}", arch.name()))
    }

    /// Grid dimensions `(nx, nz)` shared by both dies.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        self.top.dims()
    }

    /// Total power of both dies.
    #[must_use]
    pub fn total_power(&self) -> Power {
        Power::from_watts(self.top.total_power().as_watts() + self.bottom.total_power().as_watts())
    }

    /// Largest cell flux over both dies, W/cm².
    #[must_use]
    pub fn max_flux_w_per_cm2(&self) -> f64 {
        self.top
            .max_flux_w_per_cm2()
            .max(self.bottom.max_flux_w_per_cm2())
    }
}

/// Schedules an architecture through a sequence of power levels: both dies
/// rasterized at `nx × nz` per phase — the UltraSPARC T1 stacks stepping
/// between their average and peak power models.
///
/// # Panics
///
/// Panics when `levels` is empty or the duration is non-positive (the
/// [`PowerTrace`] constructor's contract).
#[must_use]
pub fn arch_trace(
    arch: &Architecture,
    levels: &[PowerLevel],
    phase_seconds: f64,
    nx: usize,
    nz: usize,
) -> MpsocTrace {
    assert!(!levels.is_empty(), "need at least one power level");
    PowerTrace::new(
        levels
            .iter()
            .map(|&level| trace::Phase {
                label: format!("{}@{level:?}", arch.name()),
                duration_seconds: phase_seconds,
                load: MpsocLoad::from_arch(arch, level, nx, nz),
            })
            .collect(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Joins independently scheduled per-die traces into one MPSoC trace — the
/// general entry point when the two dies do not share phase labels (e.g.
/// the logic die bursting while the cache die idles).
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] when the schedules disagree (phase counts or
/// durations) or any phase's grids disagree.
pub fn zip_dies(top: PowerTrace<FluxGrid>, bottom: PowerTrace<FluxGrid>) -> Result<MpsocTrace> {
    let zipped = top
        .zip(bottom, |t, b| (t, b))
        .map_err(|what| CoreError::InvalidConfig { what })?;
    // Validate every phase pair up front, then the map is infallible.
    for phase in zipped.phases() {
        let (t, b) = &phase.load;
        check_pair(t, b)?;
    }
    Ok(zipped.map(|(top, bottom)| MpsocLoad { top, bottom }))
}

/// The grid/outline agreement every two-die pairing requires (the stack has
/// one outline and one cell grid for all layers).
fn check_pair(top: &FluxGrid, bottom: &FluxGrid) -> Result<()> {
    if top.dims() != bottom.dims() {
        return Err(CoreError::InvalidConfig {
            what: format!(
                "die grids disagree: top {:?} vs bottom {:?}",
                top.dims(),
                bottom.dims()
            ),
        });
    }
    if top.die_width() != bottom.die_width() || top.die_length() != bottom.die_length() {
        return Err(CoreError::InvalidConfig {
            what: "die extents disagree between the two dies".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquamod_floorplan::{arch, niagara};

    #[test]
    fn load_validation_and_metrics() {
        let a1 = arch::arch1();
        let load = MpsocLoad::from_arch(&a1, PowerLevel::Peak, 10, 11);
        assert_eq!(load.dims(), (10, 11));
        let expected = a1.top_die().total_power(PowerLevel::Peak).as_watts()
            + a1.bottom_die().total_power(PowerLevel::Peak).as_watts();
        assert!((load.total_power().as_watts() - expected).abs() < 1e-9);
        assert!(load.max_flux_w_per_cm2() > 8.0);
        // Mismatched grids are rejected.
        let top = a1.top_die().rasterize(10, 11, PowerLevel::Peak);
        let bottom = a1.bottom_die().rasterize(8, 11, PowerLevel::Peak);
        assert!(MpsocLoad::new(top, bottom).is_err());
    }

    #[test]
    fn arch_trace_steps_levels() {
        let a3 = arch::arch3();
        let t = arch_trace(&a3, &[PowerLevel::Average, PowerLevel::Peak], 0.05, 10, 11);
        assert_eq!(t.phases().len(), 2);
        assert!((t.total_duration_seconds() - 0.1).abs() < 1e-12);
        let avg = t.phases()[0].load.total_power().as_watts();
        let peak = t.phases()[1].load.total_power().as_watts();
        assert!(avg < peak, "average {avg} W must undercut peak {peak} W");
        assert!(t.phases()[0].label.contains("Arch. 3"));
    }

    #[test]
    fn zip_dies_joins_and_validates() {
        let logic = trace::niagara_phases(
            &niagara::floorplan(),
            &[PowerLevel::Average, PowerLevel::Peak],
            0.05,
            10,
            11,
        );
        let cache = trace::niagara_phases(
            &niagara::cache_die(),
            &[PowerLevel::Average, PowerLevel::Average],
            0.05,
            10,
            11,
        );
        let joined = zip_dies(logic.clone(), cache).unwrap();
        assert_eq!(joined.phases().len(), 2);
        assert_eq!(joined.phases()[0].load.dims(), (10, 11));
        // Grid mismatch inside a phase is surfaced as an error.
        let coarse = trace::niagara_phases(
            &niagara::cache_die(),
            &[PowerLevel::Average, PowerLevel::Average],
            0.05,
            5,
            11,
        );
        assert!(zip_dies(logic.clone(), coarse).is_err());
        // Schedule mismatch too.
        let one = trace::niagara_phases(&niagara::cache_die(), &[PowerLevel::Peak], 0.05, 10, 11);
        assert!(zip_dies(logic, one).is_err());
    }
}
