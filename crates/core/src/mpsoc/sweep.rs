//! The MPSoC modulation sweep: arch × trace × flow-scale variants through
//! the deterministic parallel fan-out.

use super::load::arch_trace;
use super::stack::{MpsocConfig, MpsocModulated};
use crate::sweep::{run_variant_sweep, ExecutionMode};
use crate::transient::{EpochPolicy, ModulationPolicy};
use crate::{CsvTable, Result};
use liquamod_floorplan::arch::{self, Architecture};
use liquamod_floorplan::PowerLevel;
use std::time::Duration;

/// Which Fig. 7 architecture a sweep variant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchSpec {
    /// Arch. 1 — aligned Niagara-1 dies (stacked hotspots).
    Arch1,
    /// Arch. 2 — Niagara-1 over its inverted layout (staggered hotspots).
    Arch2,
    /// Arch. 3 — Niagara-1 logic die over an all-cache die.
    Arch3,
}

impl ArchSpec {
    /// All three architectures in paper order.
    #[must_use]
    pub fn all() -> Vec<ArchSpec> {
        vec![ArchSpec::Arch1, ArchSpec::Arch2, ArchSpec::Arch3]
    }

    /// Materializes the architecture.
    #[must_use]
    pub fn architecture(&self) -> Architecture {
        match self {
            ArchSpec::Arch1 => arch::arch1(),
            ArchSpec::Arch2 => arch::arch2(),
            ArchSpec::Arch3 => arch::arch3(),
        }
    }

    /// Short label used in report rows.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ArchSpec::Arch1 => "arch1",
            ArchSpec::Arch2 => "arch2",
            ArchSpec::Arch3 => "arch3",
        }
    }
}

/// Which two-die workload trace a sweep variant runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpsocTraceSpec {
    /// Both dies stepping through a sequence of power levels (the Niagara
    /// average/peak phase schedule).
    LevelSteps {
        /// Power levels, one phase each.
        levels: Vec<PowerLevel>,
    },
}

impl MpsocTraceSpec {
    /// The default average→peak burst.
    #[must_use]
    pub fn avg_to_peak() -> Self {
        MpsocTraceSpec::LevelSteps {
            levels: vec![PowerLevel::Average, PowerLevel::Peak],
        }
    }

    /// A single peak burst inside an otherwise-average schedule of
    /// `phases` phases: `Peak` at `hot_phase` (clamped into range),
    /// `Average` everywhere else. Staggering `hot_phase` across a fleet's
    /// stacks makes the hot-spot *migrate* between stacks at phase
    /// boundaries — the scenario where a reactive allocator is always one
    /// segment behind and predictive allocation earns its keep.
    #[must_use]
    pub fn migrating_peak(hot_phase: usize, phases: usize) -> Self {
        let phases = phases.max(1);
        let hot_phase = hot_phase.min(phases - 1);
        MpsocTraceSpec::LevelSteps {
            levels: (0..phases)
                .map(|p| {
                    if p == hot_phase {
                        PowerLevel::Peak
                    } else {
                        PowerLevel::Average
                    }
                })
                .collect(),
        }
    }

    /// Short label used in report rows, e.g. `avg-peak`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            MpsocTraceSpec::LevelSteps { levels } => levels
                .iter()
                .map(|l| match l {
                    PowerLevel::Average => "avg",
                    PowerLevel::Peak => "peak",
                })
                .collect::<Vec<_>>()
                .join("-"),
        }
    }

    /// Materializes the trace for one architecture.
    #[must_use]
    pub fn trace(
        &self,
        architecture: &Architecture,
        phase_seconds: f64,
        nx: usize,
        nz: usize,
    ) -> super::MpsocTrace {
        match self {
            MpsocTraceSpec::LevelSteps { levels } => {
                arch_trace(architecture, levels, phase_seconds, nx, nz)
            }
        }
    }
}

/// The axes of an MPSoC sweep; variants are the cartesian product.
#[derive(Debug, Clone, PartialEq)]
pub struct MpsocGrid {
    /// Architectures to run.
    pub archs: Vec<ArchSpec>,
    /// Workload traces to run.
    pub traces: Vec<MpsocTraceSpec>,
    /// Multipliers applied to the per-channel coolant flow rate.
    pub flow_scales: Vec<f64>,
}

impl MpsocGrid {
    /// The default 6-variant bench grid: all three Fig. 7 architectures
    /// through the average→peak burst, at reduced and nominal flow.
    #[must_use]
    pub fn bench_default() -> Self {
        Self {
            archs: ArchSpec::all(),
            traces: vec![MpsocTraceSpec::avg_to_peak()],
            flow_scales: vec![0.75, 1.0],
        }
    }

    /// Number of variants in the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.archs.len() * self.traces.len() * self.flow_scales.len()
    }

    /// `true` when any axis is empty (no variants).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid in stable report order: architectures outermost,
    /// then traces, then flow scales.
    #[must_use]
    pub fn variants(&self) -> Vec<MpsocVariant> {
        let mut out = Vec::with_capacity(self.len());
        for &arch in &self.archs {
            for trace in &self.traces {
                for &flow_scale in &self.flow_scales {
                    out.push(MpsocVariant {
                        index: out.len(),
                        arch,
                        trace: trace.clone(),
                        flow_scale,
                    });
                }
            }
        }
        out
    }
}

/// One concrete point of an MPSoC sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MpsocVariant {
    /// Position in grid order (also the row position in the report).
    pub index: usize,
    /// Architecture.
    pub arch: ArchSpec,
    /// Workload trace.
    pub trace: MpsocTraceSpec,
    /// Flow-rate multiplier.
    pub flow_scale: f64,
}

impl MpsocVariant {
    /// Human-readable variant label, e.g. `arch1 avg-peak f*0.75`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{} {} f*{:.2}",
            self.arch.label(),
            self.trace.label(),
            self.flow_scale
        )
    }
}

/// Configuration of one MPSoC sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct MpsocSweepOptions {
    /// Base configuration each variant perturbs.
    pub config: MpsocConfig,
    /// Epoch policy of the modulated run in each variant.
    pub policy: EpochPolicy,
    /// Duration of every trace phase, seconds.
    pub phase_seconds: f64,
    /// Scheduling mode.
    pub mode: ExecutionMode,
}

impl MpsocSweepOptions {
    /// The fast configuration: 16-step phases with an 8-step epoch cadence.
    #[must_use]
    pub fn fast(mode: ExecutionMode) -> Self {
        Self {
            config: MpsocConfig::fast(),
            policy: EpochPolicy::FixedCadence { epoch_steps: 8 },
            phase_seconds: 0.032,
            mode,
        }
    }

    /// The worker count this sweep will request (capped at the variant
    /// count when the sweep runs).
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        self.mode.resolved_workers()
    }
}

/// Metrics of one evaluated MPSoC variant: the modulated run against the
/// frozen uniform-width baseline on the same trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MpsocRow {
    /// The variant the metrics belong to.
    pub variant: MpsocVariant,
    /// Time-peak inter-layer gradient of the modulated run, kelvin.
    pub peak_gradient_modulated_k: f64,
    /// Time-peak inter-layer gradient of the frozen baseline, kelvin.
    pub peak_gradient_frozen_k: f64,
    /// Time-peak silicon temperature of the modulated run, kelvin.
    pub peak_temperature_modulated_k: f64,
    /// Gradient reduction vs the frozen baseline, as a signed fraction.
    pub gradient_reduction: f64,
    /// Modulation epochs the run fired.
    pub epochs: usize,
    /// Epochs whose candidate profile was adopted.
    pub epochs_adopted: usize,
    /// Objective evaluations spent across all epochs.
    pub evaluations: usize,
}

/// The collected result of one MPSoC sweep invocation.
#[derive(Debug, Clone)]
pub struct MpsocReport {
    /// One row per variant, in grid order.
    pub rows: Vec<MpsocRow>,
    /// Worker threads the run actually used.
    pub workers: usize,
    /// Wall-clock time of the evaluation phase.
    pub wall: Duration,
}

impl MpsocReport {
    /// Renders the report as the workspace's standard table format.
    #[must_use]
    pub fn to_table(&self) -> CsvTable {
        let mut table = CsvTable::new(vec![
            "variant",
            "peak grad mod [K]",
            "peak grad frozen [K]",
            "reduction [%]",
            "peak T mod [K]",
            "epochs",
            "adopted",
            "evals",
        ]);
        for row in &self.rows {
            table.push_row(vec![
                row.variant.label(),
                format!("{:.3}", row.peak_gradient_modulated_k),
                format!("{:.3}", row.peak_gradient_frozen_k),
                format!("{:.1}", row.gradient_reduction * 100.0),
                format!("{:.2}", row.peak_temperature_modulated_k),
                format!("{}", row.epochs),
                format!("{}", row.epochs_adopted),
                format!("{}", row.evaluations),
            ]);
        }
        table
    }
}

/// Evaluates one MPSoC variant: scale the flow, run the modulated loop and
/// the frozen baseline on the same trace, and collect the row.
///
/// # Errors
///
/// Propagates controller failures.
pub fn evaluate_mpsoc_variant(
    variant: &MpsocVariant,
    options: &MpsocSweepOptions,
) -> Result<MpsocRow> {
    let config = options.config.with_flow_scale(variant.flow_scale)?;
    let architecture = variant.arch.architecture();
    let trace = variant
        .trace
        .trace(&architecture, options.phase_seconds, config.nx, config.nz);
    let modulated = MpsocModulated::for_arch(&architecture, config.clone())?
        .controller(ModulationPolicy::Modulated(options.policy))?
        .run(&trace)?;
    let frozen = MpsocModulated::for_arch(&architecture, config)?
        .controller(ModulationPolicy::FrozenUniform)?
        .run(&trace)?;
    let peak_mod = modulated.peak_gradient_k();
    let peak_frozen = frozen.peak_gradient_k();
    Ok(MpsocRow {
        variant: variant.clone(),
        peak_gradient_modulated_k: peak_mod,
        peak_gradient_frozen_k: peak_frozen,
        peak_temperature_modulated_k: modulated.peak_temperature_k(),
        gradient_reduction: if peak_frozen > 0.0 {
            (peak_frozen - peak_mod) / peak_frozen
        } else {
            0.0
        },
        epochs: modulated.epochs.len(),
        epochs_adopted: modulated.epochs_adopted(),
        evaluations: modulated.total_evaluations(),
    })
}

/// Runs every variant of `grid` under `options` and collects the report.
///
/// Rows come back in grid order whatever the scheduling; parallel and
/// serial runs of the same grid produce bitwise-identical rows (every
/// variant is an independent scheduling unit — epoch warm starts chain only
/// *within* a variant's run — and every family operation is a pure
/// function with single-threaded finite differences).
///
/// # Errors
///
/// Every variant is evaluated regardless of failures; the sweep then
/// returns the first failure in grid order and discards the partial report.
pub fn run_mpsoc_sweep(grid: &MpsocGrid, options: &MpsocSweepOptions) -> Result<MpsocReport> {
    let (rows, workers, wall) = run_variant_sweep(
        &grid.variants(),
        options.resolved_workers(),
        MpsocVariant::label,
        |v| evaluate_mpsoc_variant(v, options),
    )?;
    Ok(MpsocReport {
        rows,
        workers,
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expansion_and_labels() {
        let grid = MpsocGrid::bench_default();
        assert_eq!(grid.len(), 6);
        assert!(!grid.is_empty());
        let variants = grid.variants();
        assert!(variants.iter().enumerate().all(|(i, v)| v.index == i));
        assert_eq!(variants[0].label(), "arch1 avg-peak f*0.75");
        assert_eq!(variants[5].label(), "arch3 avg-peak f*1.00");
        let empty = MpsocGrid {
            archs: vec![],
            traces: vec![MpsocTraceSpec::avg_to_peak()],
            flow_scales: vec![1.0],
        };
        assert!(empty.is_empty());
    }

    #[test]
    fn arch_specs_cover_the_paper() {
        let archs = ArchSpec::all();
        assert_eq!(archs.len(), 3);
        assert_eq!(archs[0].architecture().name(), "Arch. 1");
        assert_eq!(archs[2].architecture().name(), "Arch. 3");
        assert_eq!(MpsocTraceSpec::avg_to_peak().label(), "avg-peak");
    }
}
