//! Full-chip MPSoC channel modulation: the paper's two-die Fig. 7 stacks
//! driven through the transient modulation loop.
//!
//! The strip subsystem ([`crate::transient`]) reproduces the *mechanism* on
//! the Fig. 2 validation structure; this module reproduces the *system*: a
//! Fig. 7 [`Architecture`](liquamod_floorplan::arch::Architecture) and a
//! pair of per-die power traces become a five-layer finite-volume stack —
//!
//! ```text
//!   cap silicon        (unpowered)
//!   microchannel cavity 2   ← widths[1]
//!   top die silicon    (top-die flux grid)
//!   microchannel cavity 1   ← widths[0]
//!   bottom die silicon (bottom-die flux grid)
//! ```
//!
//! — and a [`MpsocModulated`] family drives it through the stack-generic
//! [`ModulationController`](crate::transient::ModulationController). At each
//! epoch the two cavities' per-group width profiles are optimized **jointly**:
//! one analytical model whose columns are both cavities' channel groups (the
//! top die's heat split evenly between the cavities it borders), so the §IV
//! optimizer's equal-pressure coupling spans the whole coolant network.
//!
//! [`run_mpsoc_sweep`] fans arch × trace × flow-scale variants across worker
//! threads with the sweep engines' parallel == serial bitwise-determinism
//! guarantee; the `sweep -- mpsoc` bench mode gates on every modulated run
//! strictly beating its frozen uniform-width baseline on the time-peak
//! inter-layer gradient.

mod load;
mod stack;
mod sweep;

pub use load::{arch_trace, zip_dies, MpsocLoad, MpsocTrace};
pub use stack::{MpsocConfig, MpsocModulated};
pub use sweep::{
    evaluate_mpsoc_variant, run_mpsoc_sweep, ArchSpec, MpsocGrid, MpsocReport, MpsocRow,
    MpsocSweepOptions, MpsocTraceSpec, MpsocVariant,
};
