//! The collected result of an observability session and its exports:
//! deterministic JSONL, the counters JSON object for BENCH records, and
//! the self-time profile table. The Chrome trace export lives in
//! [`super::trace`].

use super::counters::ObsEvent;
use super::LocalBuf;
use crate::CsvTable;
use std::collections::BTreeMap;
use std::time::Instant;

/// One resolved span: the raw thread-local record with its start converted
/// to a nanosecond offset from session start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name from the taxonomy in `docs/OBSERVABILITY.md`.
    pub name: &'static str,
    /// The fleet lane (or serve session slot) the span belongs to, if any.
    pub lane: Option<u32>,
    /// Index of the enclosing span in [`ObsReport::spans`].
    pub parent: Option<usize>,
    /// Nesting depth under the session root (0 = top level).
    pub depth: u32,
    /// Open time, nanoseconds since session start. **Wall clock** — varies
    /// run to run; excluded from the deterministic exports.
    pub start_ns: u64,
    /// Duration in nanoseconds. **Wall clock** — excluded likewise.
    pub dur_ns: u64,
    /// Recording thread: 0 = calling thread, workers 1-based. Scheduling-
    /// dependent; excluded from the deterministic exports.
    pub worker: u32,
}

/// Everything one [`super::ObsSession`] recorded, in deterministic order:
/// spans in open order (the merged serial order, not thread order), events
/// in record order, counters sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// Resolved spans; `parent` indexes into this vector.
    pub spans: Vec<SpanRecord>,
    /// Final counter values, sorted by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Structured events, in record order.
    pub events: Vec<ObsEvent>,
}

/// Resolves a drained session buffer into a report.
pub(crate) fn resolve(buf: LocalBuf, epoch: Instant) -> ObsReport {
    let spans = buf
        .spans
        .into_iter()
        .map(|s| SpanRecord {
            name: s.name,
            lane: s.lane,
            parent: s.parent,
            depth: s.depth,
            start_ns: s.start.saturating_duration_since(epoch).as_nanos() as u64,
            dur_ns: s.dur_ns,
            worker: s.worker,
        })
        .collect();
    ObsReport {
        spans,
        counters: buf.counters,
        events: buf.events,
    }
}

/// Minimal JSON string escaping for event labels/details.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn opt_json(v: Option<impl std::fmt::Display>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

impl ObsReport {
    /// The final value of a named counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The counters as a single-line JSON object, keys sorted — the
    /// `counters` block of the BENCH record shared tail. `{}` when empty.
    #[must_use]
    pub fn counters_json(&self) -> String {
        let body = self
            .counters
            .iter()
            .map(|(name, value)| format!("\"{}\": {value}", json_escape(name)))
            .collect::<Vec<_>>()
            .join(", ");
        format!("{{{body}}}")
    }

    /// The deterministic JSONL event log: one line per span (name, depth,
    /// parent, lane — **no** wall-clock or worker fields), then one per
    /// event, then one per counter, keys sorted. Bitwise-reproducible
    /// across runs and worker counts for a deterministic workload.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, s) in self.spans.iter().enumerate() {
            out.push_str(&format!(
                "{{\"type\": \"span\", \"seq\": {seq}, \"name\": \"{}\", \"depth\": {}, \
                 \"parent\": {}, \"lane\": {}}}\n",
                json_escape(s.name),
                s.depth,
                opt_json(s.parent),
                opt_json(s.lane),
            ));
        }
        for (seq, e) in self.events.iter().enumerate() {
            out.push_str(&format!(
                "{{\"type\": \"event\", \"seq\": {seq}, \"label\": \"{}\", \"detail\": \"{}\", \
                 \"lane\": {}}}\n",
                json_escape(&e.label),
                json_escape(&e.detail),
                opt_json(e.lane),
            ));
        }
        for (name, value) in &self.counters {
            out.push_str(&format!(
                "{{\"type\": \"counter\", \"name\": \"{}\", \"value\": {value}}}\n",
                json_escape(name),
            ));
        }
        out
    }

    /// The Chrome trace-event JSON export (`chrome://tracing` /
    /// [Perfetto](https://ui.perfetto.dev)-loadable): one process per lane,
    /// one thread per worker, complete (`"X"`) events carrying
    /// depth/parent in `args`. See `docs/OBSERVABILITY.md` for the schema.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        super::trace::render(self)
    }

    /// Wall-clock self time of each span: its duration minus its direct
    /// children's durations, clamped at 0 (clock jitter can make children
    /// appear marginally longer than their parent).
    #[must_use]
    pub fn self_times_ns(&self) -> Vec<u64> {
        let mut child_ns = vec![0u64; self.spans.len()];
        for s in &self.spans {
            if let Some(p) = s.parent {
                child_ns[p] += s.dur_ns;
            }
        }
        self.spans
            .iter()
            .zip(&child_ns)
            .map(|(s, &c)| s.dur_ns.saturating_sub(c))
            .collect()
    }

    /// The per-name self-time profile: spans aggregated by name (in order
    /// of first appearance) with call count, total and self wall time, and
    /// each name's share of the summed self time. Printed by the bench
    /// binary when tracing is on.
    #[must_use]
    pub fn self_time_table(&self) -> CsvTable {
        struct Row {
            count: u64,
            total_ns: u64,
            self_ns: u64,
        }
        let self_ns = self.self_times_ns();
        let mut order: Vec<&'static str> = Vec::new();
        let mut rows: BTreeMap<&'static str, Row> = BTreeMap::new();
        for (s, &own) in self.spans.iter().zip(&self_ns) {
            let row = rows.entry(s.name).or_insert_with(|| {
                order.push(s.name);
                Row {
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                }
            });
            row.count += 1;
            row.total_ns += s.dur_ns;
            row.self_ns += own;
        }
        let sum_self: u64 = self_ns.iter().sum();
        let mut table = CsvTable::new(vec!["span", "count", "total [ms]", "self [ms]", "self [%]"]);
        for name in order {
            let row = &rows[name];
            table.push_row(vec![
                name.to_string(),
                row.count.to_string(),
                format!("{:.3}", row.total_ns as f64 / 1e6),
                format!("{:.3}", row.self_ns as f64 / 1e6),
                format!(
                    "{:.1}",
                    if sum_self == 0 {
                        0.0
                    } else {
                        100.0 * row.self_ns as f64 / sum_self as f64
                    }
                ),
            ]);
        }
        table
    }

    /// A copy with every wall-clock field zeroed (span starts, durations,
    /// worker ids) — the form golden trace fixtures are checked in as, so
    /// their bytes are fully deterministic.
    #[must_use]
    pub fn zeroed(&self) -> ObsReport {
        let mut out = self.clone();
        for s in &mut out.spans {
            s.start_ns = 0;
            s.dur_ns = 0;
            s.worker = 0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsReport {
        let mut counters = BTreeMap::new();
        counters.insert("b.two", 2u64);
        counters.insert("a.one", 1u64);
        ObsReport {
            spans: vec![
                SpanRecord {
                    name: "root",
                    lane: None,
                    parent: None,
                    depth: 0,
                    start_ns: 0,
                    dur_ns: 10_000_000,
                    worker: 0,
                },
                SpanRecord {
                    name: "child",
                    lane: Some(3),
                    parent: Some(0),
                    depth: 1,
                    start_ns: 2_000_000,
                    dur_ns: 6_000_000,
                    worker: 1,
                },
            ],
            counters,
            events: vec![ObsEvent {
                label: "kind".into(),
                detail: "what \"happened\"".into(),
                lane: Some(3),
            }],
        }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let report = sample();
        assert_eq!(report.self_times_ns(), vec![4_000_000, 6_000_000]);
        let table = report.self_time_table();
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn jsonl_is_wall_clock_free_and_escaped() {
        let report = sample();
        let jsonl = report.to_jsonl();
        assert!(!jsonl.contains("start"), "no wall fields: {jsonl}");
        assert!(!jsonl.contains("dur"), "no wall fields: {jsonl}");
        assert!(!jsonl.contains("worker"), "no scheduling fields: {jsonl}");
        assert!(jsonl.contains("\\\"happened\\\""), "escaped: {jsonl}");
        // Zeroing wall fields must not change the deterministic export.
        assert_eq!(jsonl, report.zeroed().to_jsonl());
        // Counters come sorted by name.
        let a = jsonl.find("a.one").unwrap();
        let b = jsonl.find("b.two").unwrap();
        assert!(a < b);
    }

    #[test]
    fn counters_json_is_sorted_single_line() {
        assert_eq!(sample().counters_json(), "{\"a.one\": 1, \"b.two\": 2}");
        let empty = ObsReport {
            spans: vec![],
            counters: BTreeMap::new(),
            events: vec![],
        };
        assert_eq!(empty.counters_json(), "{}");
    }
}
