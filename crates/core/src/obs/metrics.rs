//! Lightweight service metrics: decision-latency histograms and
//! monotonically increasing event counters. Promoted out of
//! `serve::metrics` into the shared observability layer (the serve module
//! re-exports them unchanged).
//!
//! The serve layer's numeric *outputs* (width decisions, degraded events)
//! are deterministic and gated bitwise; its *metrics* measure the wall
//! clock and are therefore explicitly outside every identity gate. The
//! histogram keeps fixed log-spaced buckets (factor 2 per bucket, 1 µs
//! floor) so merging per-session histograms into a pool-wide one is an
//! element-wise add and quantile queries never allocate.

/// Seconds spanned by the first histogram bucket (everything ≤ 1 µs).
const BASE_SECONDS: f64 = 1e-6;

/// Number of factor-2 buckets: `1 µs · 2^47` ≈ 1.6e8 s, far beyond any
/// decision latency; later samples land in the last (open-ended) bucket.
const BUCKETS: usize = 48;

/// A fixed-size log-spaced latency histogram (factor-2 buckets, 1 µs
/// floor) with exact count/sum/min/max side channels.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum_seconds: f64,
    min_seconds: f64,
    max_seconds: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum_seconds: 0.0,
            min_seconds: f64::INFINITY,
            max_seconds: 0.0,
        }
    }

    /// The bucket index a latency falls into: bucket `i` holds samples in
    /// `(BASE·2^(i−1), BASE·2^i]` (bucket 0 holds everything ≤ `BASE`;
    /// [`record`](Self::record) sanitizes samples, so `seconds` is always
    /// finite and non-negative here).
    fn bucket(seconds: f64) -> usize {
        if seconds <= BASE_SECONDS {
            return 0;
        }
        let i = (seconds / BASE_SECONDS).log2().ceil() as usize;
        i.min(BUCKETS - 1)
    }

    /// A bucket's upper bound in seconds.
    fn bucket_upper(i: usize) -> f64 {
        BASE_SECONDS * (1u64 << i.min(52)) as f64
    }

    /// Records one latency sample. Non-finite or negative samples count
    /// into the first bucket (they indicate a clock anomaly, not a fast
    /// decision, but dropping them would skew the count).
    pub fn record(&mut self, seconds: f64) {
        let s = if seconds.is_finite() && seconds >= 0.0 {
            seconds
        } else {
            0.0
        };
        self.counts[Self::bucket(s)] += 1;
        self.count += 1;
        self.sum_seconds += s;
        self.min_seconds = self.min_seconds.min(s);
        self.max_seconds = self.max_seconds.max(s);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in seconds (0 when empty).
    #[must_use]
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_seconds / self.count as f64
        }
    }

    /// Smallest recorded sample in seconds (0 when empty).
    #[must_use]
    pub fn min_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_seconds
        }
    }

    /// Largest recorded sample in seconds (0 when empty).
    #[must_use]
    pub fn max_seconds(&self) -> f64 {
        self.max_seconds
    }

    /// The latency at quantile `q` ∈ [0, 1], linearly interpolated within
    /// the bucket holding the `⌈q·count⌉`-th smallest sample (a plain
    /// bucket upper bound would overestimate interior quantiles by up to
    /// the factor-2 bucket width), clamped to the exact observed
    /// [min, max] so single-sample histograms report the sample itself.
    /// Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = seen;
            seen += c;
            if seen >= target {
                let lower = if i == 0 {
                    0.0
                } else {
                    Self::bucket_upper(i - 1)
                };
                let upper = Self::bucket_upper(i);
                // The target sample's rank within this bucket, as a
                // fraction of the bucket's population — samples assumed
                // uniform across the bucket.
                let frac = (target - before) as f64 / c as f64;
                let interpolated = lower + frac * (upper - lower);
                return interpolated.clamp(self.min_seconds, self.max_seconds);
            }
        }
        self.max_seconds
    }

    /// Adds every sample of `other` into `self` (bucket-wise; the exact
    /// min/max/sum side channels merge exactly).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_seconds += other.sum_seconds;
        if other.count > 0 {
            self.min_seconds = self.min_seconds.min(other.min_seconds);
            self.max_seconds = self.max_seconds.max(other.max_seconds);
        }
    }
}

/// Per-session serve counters, updated once per width decision.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionMetrics {
    /// Decision latency of every segment this session ran.
    pub latency: LatencyHistogram,
    /// Segments (width decisions) served.
    pub segments: u64,
    /// Modulation epochs across all served segments.
    pub epochs: u64,
    /// Optimizer objective evaluations across all served segments.
    pub evaluations: u64,
    /// Degraded-mode events surfaced by this session's runs.
    pub degraded_events: u64,
}

impl SessionMetrics {
    /// Folds one served segment into the counters.
    pub fn record_decision(
        &mut self,
        latency_seconds: f64,
        epochs: usize,
        evaluations: usize,
        degraded: usize,
    ) {
        self.latency.record(latency_seconds);
        self.segments += 1;
        self.epochs += epochs as u64;
        self.evaluations += evaluations as u64;
        self.degraded_events += degraded as u64;
    }
}

/// Pool-wide serve counters: the union of every session's metrics plus
/// lifecycle counts the sessions cannot see.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolMetrics {
    /// Decision latency across all sessions (merged histograms).
    pub latency: LatencyHistogram,
    /// Sessions opened over the pool's lifetime.
    pub sessions_opened: u64,
    /// Sessions closed by the caller.
    pub sessions_closed: u64,
    /// Sessions evicted after a failed segment run.
    pub sessions_failed: u64,
    /// Batches drained.
    pub batches: u64,
    /// Width decisions served across all sessions.
    pub decisions: u64,
    /// Modulation epochs across all served segments.
    pub epochs: u64,
    /// Optimizer objective evaluations across all served segments.
    pub evaluations: u64,
    /// Degraded-mode events recorded (session runs and pool lifecycle).
    pub degraded_events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_an_empty_histogram_are_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean_seconds(), 0.0);
        assert_eq!(h.min_seconds(), 0.0);
    }

    #[test]
    fn single_sample_reports_itself_at_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(3.7e-3);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.0), 3.7e-3);
        assert_eq!(h.quantile(0.5), 3.7e-3);
        assert_eq!(h.quantile(0.99), 3.7e-3);
        assert_eq!(h.mean_seconds(), 3.7e-3);
    }

    #[test]
    fn quantiles_are_monotone_and_bucket_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u32 {
            h.record(f64::from(i) * 1e-4); // 0.1 ms .. 10 ms
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99, "p50 {p50} must not exceed p99 {p99}");
        // The median sample is 5 ms; its factor-2 bucket tops out at 8.192 ms.
        assert!((4e-3..=9e-3).contains(&p50), "p50 {p50}");
        assert!(p99 <= h.max_seconds());
        assert!(h.min_seconds() == 1e-4);
    }

    #[test]
    fn interior_quantiles_interpolate_within_the_bucket() {
        // 100 uniform samples, 0.1 ms .. 10 ms: the true median is
        // (5.0 + 5.1)/2 = 5.05 ms. The raw bucket upper bound would say
        // 8.192 ms (a 62% overestimate); interpolation must land within
        // 15% of the truth.
        let mut h = LatencyHistogram::new();
        for i in 1..=100u32 {
            h.record(f64::from(i) * 1e-4);
        }
        let true_median = 5.05e-3;
        let p50 = h.quantile(0.5);
        let rel = (p50 - true_median).abs() / true_median;
        assert!(
            rel < 0.15,
            "p50 {p50} vs true median {true_median} (rel err {rel:.3})"
        );
        // The tail quantile interpolates too, and stays within its bucket.
        let p90 = h.quantile(0.9);
        let true_p90 = 9.0e-3;
        assert!(
            (p90 - true_p90).abs() / true_p90 < 0.15,
            "p90 {p90} vs {true_p90}"
        );
    }

    #[test]
    fn merge_is_sample_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(1e-3);
        b.record(4e-3);
        b.record(2e-6);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.min_seconds(), 2e-6);
        assert_eq!(merged.max_seconds(), 4e-3);
        let mut all = LatencyHistogram::new();
        for s in [1e-3, 4e-3, 2e-6] {
            all.record(s);
        }
        assert_eq!(merged, all);
    }

    #[test]
    fn pathological_samples_count_without_poisoning_sums() {
        let mut h = LatencyHistogram::new();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert!(h.mean_seconds().is_finite());
        assert_eq!(h.min_seconds(), 0.0);
    }

    #[test]
    fn session_metrics_accumulate() {
        let mut m = SessionMetrics::default();
        m.record_decision(1e-3, 2, 40, 1);
        m.record_decision(2e-3, 1, 10, 0);
        assert_eq!(m.segments, 2);
        assert_eq!(m.epochs, 3);
        assert_eq!(m.evaluations, 50);
        assert_eq!(m.degraded_events, 1);
        assert_eq!(m.latency.count(), 2);
    }
}
