//! Hierarchical spans: RAII guards over named regions of work.
//!
//! A span opens on the current thread, nests under the innermost still-open
//! span of that thread, and closes (fixing its duration) when its
//! [`SpanGuard`] drops. Workers' spans are re-attached to the caller's span
//! stack by the deterministic unit merge in [`super::absorb_unit`].

use super::{enabled, TLS};
use std::time::Instant;

/// One recorded span, still in thread-local raw form: `start` is a raw
/// [`Instant`] (resolved to a session-relative offset at session finish)
/// and `parent` indexes the owning buffer's span vector.
pub(crate) struct RawSpan {
    /// Static span name from the taxonomy in `docs/OBSERVABILITY.md`.
    pub(crate) name: &'static str,
    /// The fleet lane (or serve session slot) the span belongs to, if any.
    pub(crate) lane: Option<u32>,
    /// Index of the enclosing span in the same buffer.
    pub(crate) parent: Option<usize>,
    /// Nesting depth (0 = root of its thread at record time).
    pub(crate) depth: u32,
    /// Wall-clock open time.
    pub(crate) start: Instant,
    /// Wall-clock duration, fixed when the guard drops (0 while open).
    pub(crate) dur_ns: u64,
    /// 0 = calling thread; workers are tagged 1-based by the unit merge.
    pub(crate) worker: u32,
}

/// Sentinel index marking a guard created while recording was disabled.
const DISABLED: usize = usize::MAX;

/// Closes its span when dropped. Created by [`span`]/[`lane_span`]; when no
/// session is recording the guard is an inert no-op.
#[must_use = "a span measures the region until this guard drops"]
pub struct SpanGuard {
    /// Index of the span in the thread's buffer, or [`DISABLED`].
    idx: usize,
    /// The thread's lane before this guard (restored on drop).
    prev_lane: Option<u32>,
    /// Whether this guard changed the thread's lane.
    restore_lane: bool,
}

/// Opens a span named `name` on the current thread. Near-zero cost (one
/// relaxed atomic load) when no session is recording.
pub fn span(name: &'static str) -> SpanGuard {
    open(name, None)
}

/// Opens a span named `name` tagged with `lane`; spans and events recorded
/// while this guard is alive inherit the lane (the trace export maps lanes
/// to Perfetto processes).
pub fn lane_span(name: &'static str, lane: u32) -> SpanGuard {
    open(name, Some(lane))
}

fn open(name: &'static str, lane: Option<u32>) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            idx: DISABLED,
            prev_lane: None,
            restore_lane: false,
        };
    }
    TLS.with(|t| {
        let mut b = t.borrow_mut();
        let (prev_lane, restore_lane) = match lane {
            Some(l) => (b.lane.replace(l), true),
            None => (None, false),
        };
        let idx = b.spans.len();
        let parent = b.open.last().copied();
        let depth = b.open.len() as u32;
        let lane = b.lane;
        b.spans.push(RawSpan {
            name,
            lane,
            parent,
            depth,
            start: Instant::now(),
            dur_ns: 0,
            worker: 0,
        });
        b.open.push(idx);
        SpanGuard {
            idx,
            prev_lane,
            restore_lane,
        }
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.idx == DISABLED {
            return;
        }
        TLS.with(|t| {
            let mut b = t.borrow_mut();
            // The buffer may have been drained since this span opened (a
            // unit capture or session finish on this thread); then there is
            // nothing left to close.
            if self.idx >= b.spans.len() {
                return;
            }
            // Inner guards drop first, so the top of the open stack is
            // normally this span; pop defensively past any child a panic
            // unwound over.
            while let Some(&top) = b.open.last() {
                if top < self.idx {
                    break;
                }
                b.open.pop();
            }
            b.spans[self.idx].dur_ns = b.spans[self.idx].start.elapsed().as_nanos() as u64;
            if self.restore_lane {
                b.lane = self.prev_lane;
            }
        });
    }
}
