//! `liquamod::obs` — the workspace-wide observability layer: hierarchical
//! spans, a named-counter registry, structured events and Perfetto-loadable
//! trace exports for the whole modulation pipeline.
//!
//! The batch and serving layers gate their numeric outputs **bitwise**
//! (parallel == serial at any worker count), so an observability layer that
//! perturbed results or ordered its records by thread interleaving would be
//! unusable here. This module is built around the same discipline as the
//! fan-out it instruments:
//!
//! * **Disabled by default, near-zero cost.** Every probe
//!   ([`span`]/[`lane_span`]/[`add`]/[`event`]) first reads one relaxed
//!   [`AtomicBool`]; with no [`ObsSession`] active that is the entire cost,
//!   and no thread-local state is touched.
//! * **Thread-local recording, deterministic merge.** Each thread records
//!   into its own buffer — no locks, no cross-thread contention on the hot
//!   path. `crate::sweep::parallel_map` captures each scheduling unit's
//!   records right after the unit finishes (`capture_unit`) and the join
//!   absorbs them **in item order** (`absorb_unit`) — the same
//!   index-merge that makes parallel results bitwise-equal to serial ones,
//!   so the span/counter/event *content* of a run is identical at any
//!   worker count (only wall-clock timestamps and worker ids differ; the
//!   deterministic JSONL export excludes exactly those fields).
//! * **One session at a time.** [`ObsSession::start`] holds a process-wide
//!   lock for the session's lifetime, so concurrently running tests
//!   serialize instead of interleaving their records.
//!
//! Data flow of one instrumented parallel run:
//!
//! ```text
//!   caller thread                    worker w (fresh per scope)
//!   ─────────────                    ──────────────────────────
//!   ObsSession::start ─ ENABLED=1
//!   span("fleet.run")
//!    span("fleet.wavefront")
//!     parallel_map ──────────────▶  unit i: spans/counters/events
//!                                    into worker TLS (lock-free)
//!                                   capture_unit() ─▶ UnitObs(i, w)
//!    join: sort by i ◀────────────  chunks [(i, result, UnitObs)]
//!    absorb_unit in item order
//!      (parents re-based onto the
//!       caller's open span stack)
//!   ObsSession::finish ─▶ ObsReport ─▶ chrome trace / JSONL / table
//! ```
//!
//! The counter registry and span taxonomy are documented in
//! `docs/OBSERVABILITY.md`; the exports live in [`ObsReport`].

mod counters;
mod metrics;
mod report;
mod span;
mod trace;

pub use counters::{add, event, ObsEvent};
pub use metrics::{LatencyHistogram, PoolMetrics, SessionMetrics};
pub use report::{ObsReport, SpanRecord};
pub use span::{lane_span, span, SpanGuard};

use span::RawSpan;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// The global recording gate every probe checks first. Only
/// [`ObsSession`] flips it; the relaxed load is the entire disabled-path
/// cost.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Serializes observability sessions process-wide: `cargo test` runs tests
/// concurrently in one process, and two interleaved sessions would corrupt
/// each other's global gate. Held (not just taken) by [`ObsSession`].
static SESSION_LOCK: Mutex<()> = Mutex::new(());

/// `true` while an [`ObsSession`] is recording.
#[inline]
pub(crate) fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One thread's recording buffer. Workers are fresh threads per
/// [`std::thread::scope`] call, so a worker buffer never outlives its
/// scheduling units; the calling thread's buffer is cleared at session
/// start and drained at session finish.
#[derive(Default)]
pub(crate) struct LocalBuf {
    /// Closed and still-open spans, in open order.
    pub(crate) spans: Vec<RawSpan>,
    /// Indices into `spans` of the currently open span stack.
    pub(crate) open: Vec<usize>,
    /// Monotonic named counters.
    pub(crate) counters: BTreeMap<&'static str, u64>,
    /// Structured events, in record order.
    pub(crate) events: Vec<ObsEvent>,
    /// The lane nested spans/events inherit (set by [`lane_span`]).
    pub(crate) lane: Option<u32>,
}

thread_local! {
    pub(crate) static TLS: RefCell<LocalBuf> = RefCell::new(LocalBuf::default());
}

/// An active recording session. Starting one enables every probe in the
/// process; [`finish`](Self::finish) disables them again and returns the
/// collected [`ObsReport`]. Sessions serialize on a process-wide lock, and
/// dropping one without finishing still disables recording.
pub struct ObsSession {
    _guard: MutexGuard<'static, ()>,
    epoch: Instant,
}

impl ObsSession {
    /// Starts recording: takes the session lock (waiting for any other
    /// session to finish), clears the calling thread's buffer and enables
    /// every probe.
    #[must_use]
    pub fn start() -> Self {
        let guard = SESSION_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        // A previous session that overlapped other work may have left
        // records on this thread; the session owns a clean slate.
        TLS.with(|t| *t.borrow_mut() = LocalBuf::default());
        let epoch = Instant::now();
        ENABLED.store(true, Ordering::SeqCst);
        ObsSession {
            _guard: guard,
            epoch,
        }
    }

    /// Stops recording and resolves the calling thread's records — which,
    /// after the deterministic joins, hold the whole run — into a report.
    /// Span start times become nanosecond offsets from session start.
    #[must_use]
    pub fn finish(self) -> ObsReport {
        ENABLED.store(false, Ordering::SeqCst);
        let buf = TLS.with(|t| std::mem::take(&mut *t.borrow_mut()));
        report::resolve(buf, self.epoch)
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        // `finish` already stored false; storing it again is harmless, and
        // a session dropped *without* finishing must not leave the process
        // recording forever.
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// The records one scheduling unit produced on a worker thread, captured
/// by [`capture_unit`] and re-attached to the caller by [`absorb_unit`].
pub(crate) struct UnitObs {
    spans: Vec<RawSpan>,
    counters: BTreeMap<&'static str, u64>,
    events: Vec<ObsEvent>,
}

impl UnitObs {
    /// Stamps the worker id (1-based; 0 is the calling thread) onto every
    /// captured span. Purely cosmetic for the trace's thread lanes — the
    /// deterministic exports exclude it.
    pub(crate) fn tag_worker(&mut self, worker: u32) {
        for s in &mut self.spans {
            s.worker = worker;
        }
    }
}

/// Drains the calling (worker) thread's buffer into a [`UnitObs`], or
/// `None` when recording is disabled. Called between scheduling units, so
/// every span is closed and the open stack is empty.
pub(crate) fn capture_unit() -> Option<UnitObs> {
    if !enabled() {
        return None;
    }
    TLS.with(|t| {
        let mut b = t.borrow_mut();
        b.open.clear();
        Some(UnitObs {
            spans: std::mem::take(&mut b.spans),
            counters: std::mem::take(&mut b.counters),
            events: std::mem::take(&mut b.events),
        })
    })
}

/// Splices one unit's records into the calling thread's buffer: span
/// parents are re-based onto the caller's currently open span (so a unit
/// run on a worker nests exactly where a serial run would have put it),
/// counters merge additively and events append. Callers invoke this in
/// **item order** after the index-sorted join — that ordering is what makes
/// the merged record content independent of the worker count.
pub(crate) fn absorb_unit(unit: UnitObs) {
    if !enabled() {
        return;
    }
    TLS.with(|t| {
        let mut b = t.borrow_mut();
        let base = b.spans.len();
        let caller_parent = b.open.last().copied();
        let depth_offset = b.open.len() as u32;
        for mut s in unit.spans {
            s.parent = match s.parent {
                Some(p) => Some(p + base),
                None => caller_parent,
            };
            s.depth += depth_offset;
            b.spans.push(s);
        }
        for (name, delta) in unit.counters {
            *b.counters.entry(name).or_insert(0) += delta;
        }
        b.events.extend(unit.events);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_are_no_ops() {
        assert!(!enabled());
        let _s = span("never.recorded");
        add("never.counted", 3);
        event("never", "happened");
        assert!(capture_unit().is_none());
        TLS.with(|t| {
            let b = t.borrow();
            assert!(b.spans.is_empty());
            assert!(b.counters.is_empty());
            assert!(b.events.is_empty());
        });
    }

    #[test]
    fn session_records_nested_spans_and_counters() {
        let session = ObsSession::start();
        {
            let _outer = span("outer");
            add("hits", 2);
            {
                let _inner = lane_span("inner", 7);
                add("hits", 1);
                event("ping", "detail");
            }
        }
        let report = session.finish();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.spans[0].name, "outer");
        assert_eq!(report.spans[0].parent, None);
        assert_eq!(report.spans[0].depth, 0);
        assert_eq!(report.spans[1].name, "inner");
        assert_eq!(report.spans[1].parent, Some(0));
        assert_eq!(report.spans[1].depth, 1);
        assert_eq!(report.spans[1].lane, Some(7));
        assert_eq!(report.counter("hits"), 3);
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].lane, Some(7));
        // The session disabled recording on finish.
        assert!(!enabled());
    }

    #[test]
    fn absorbed_units_nest_under_the_callers_open_span() {
        let session = ObsSession::start();
        let captured = {
            let _root = span("root");
            // Simulate a worker: record a unit on this thread, capture it,
            // then absorb it back under the open root span.
            let unit = {
                let _u = span("unit");
                add("units", 1);
                capture_unit().expect("session is recording")
            };
            // Capturing drained the worker-side records (including root —
            // this test shares one thread, a real worker has its own TLS),
            // so re-open the caller shape before absorbing.
            unit
        };
        // Fresh caller shape: one open parent span.
        let _parent = span("parent");
        absorb_unit(captured);
        drop(_parent);
        let report = session.finish();
        // capture_unit drained "root" into the unit, so the unit carries
        // [root, unit]; absorbed under "parent" they re-base onto it.
        let parent_idx = report
            .spans
            .iter()
            .position(|s| s.name == "parent")
            .expect("parent span recorded");
        let root = report.spans.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(root.parent, Some(parent_idx));
        let unit = report.spans.iter().find(|s| s.name == "unit").unwrap();
        assert_eq!(report.spans[unit.parent.unwrap()].name, "root");
        assert_eq!(report.counter("units"), 1);
    }
}
