//! The named-counter registry and structured events.
//!
//! Counters are monotonic `u64`s keyed by `&'static str` names, recorded
//! thread-locally and merged additively by the deterministic unit join —
//! so a counter's final value is a pure function of the work performed,
//! identical at any worker count. The registered names (full semantics in
//! `docs/OBSERVABILITY.md`):
//!
//! | name | incremented by |
//! |---|---|
//! | `assembly.full_rebuilds` | symbolic CSR assembly builds (`AssemblyCache`) |
//! | `assembly.values_only_refreshes` | values-in-place refreshes (`AssemblyCache`) |
//! | `expstep.matrix_rebuilds` | condensed exponential-integrator matrix builds |
//! | `optimizer.evaluations` | optimizer objective (BVP) evaluations |
//! | `optimizer.warm_start_hits` | optimizer solves that started from a warm point |
//! | `epoch.adopted` | modulation epochs whose candidate widths were adopted |
//! | `epoch.rejected` | modulation epochs that kept the incumbent widths |
//! | `fleet.segments` | (lane × stack × wavefront) segment tasks run |
//! | `fleet.dedup_hits` | segment-0 results reused across dedup-grouped lanes |
//! | `allocator.forecast_hits` | predictive allocations steered by an informative power forecast |
//! | `allocator.surrogate_refits` | sensitivity-surrogate slope refits from fed-back (share, gradient) pairs |
//! | `serve.decisions` | width decisions served by a pool batch |
//! | `obs.events` | structured events recorded (degraded-mode stream) |
//!
//! Events carry the run's *structured* occurrences — today the
//! `DegradedEvent` stream of the faults and serve layers — ordered by the
//! same deterministic merge as spans. Their content (label, detail, lane)
//! is bitwise-reproducible across runs and worker counts; only spans carry
//! wall-clock fields.

use super::{enabled, TLS};

/// Adds `delta` to the named counter on the current thread. Counter names
/// must be static strings from the registry above (new names belong in the
/// table and in `docs/OBSERVABILITY.md`). Near-zero cost when no session
/// is recording.
pub fn add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    TLS.with(|t| {
        *t.borrow_mut().counters.entry(name).or_insert(0) += delta;
    });
}

/// Records a structured event on the current thread, tagged with the
/// thread's current lane. `label` should be a stable machine-readable kind
/// (e.g. a `DegradedKind::label()`); `detail` is free-form but must be
/// deterministic — derived from simulation state, never from the wall
/// clock.
pub fn event(label: impl Into<String>, detail: impl Into<String>) {
    if !enabled() {
        return;
    }
    let (label, detail) = (label.into(), detail.into());
    TLS.with(|t| {
        let mut b = t.borrow_mut();
        let lane = b.lane;
        b.events.push(ObsEvent {
            label,
            detail,
            lane,
        });
        *b.counters.entry("obs.events").or_insert(0) += 1;
    });
}

/// One structured event: a deterministic, ordered occurrence (not a timed
/// region — those are spans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Stable machine-readable kind.
    pub label: String,
    /// Deterministic human-readable detail.
    pub detail: String,
    /// The lane the recording thread was tagged with, if any.
    pub lane: Option<u32>,
}
