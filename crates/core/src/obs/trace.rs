//! Chrome trace-event JSON export: the `{"traceEvents": [...]}` object
//! format loadable by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//!
//! Mapping: each fleet lane becomes a Perfetto *process* (`pid` = lane + 1;
//! `pid` 0 holds unlaned spans), each recording thread a *thread* (`tid` =
//! worker id, 0 = the calling thread). Spans are complete (`"X"`) events
//! with microsecond `ts`/`dur`; `args` carries the span's `depth` and
//! `parent` sequence index so tools can rebuild the hierarchy without
//! relying on timestamps (the checked-in golden trace has them zeroed).

use super::report::ObsReport;
use std::collections::BTreeSet;

/// The `pid` a span renders under: lanes are 1-based processes, everything
/// else is process 0.
fn pid(lane: Option<u32>) -> u32 {
    lane.map_or(0, |l| l + 1)
}

/// Renders the report as a Chrome trace-event JSON string.
pub(super) fn render(report: &ObsReport) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(&line);
    };

    // Metadata: name every process and thread that appears.
    let pids: BTreeSet<u32> = report.spans.iter().map(|s| pid(s.lane)).collect();
    for p in &pids {
        let name = if *p == 0 {
            "liquamod".to_string()
        } else {
            format!("lane {}", p - 1)
        };
        push(
            format!(
                "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {p}, \"tid\": 0, \
                 \"args\": {{\"name\": \"{name}\"}}}}"
            ),
            &mut out,
        );
    }
    let tids: BTreeSet<(u32, u32)> = report
        .spans
        .iter()
        .map(|s| (pid(s.lane), s.worker))
        .collect();
    for (p, t) in &tids {
        let name = if *t == 0 {
            "caller".to_string()
        } else {
            format!("worker {t}")
        };
        push(
            format!(
                "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {p}, \"tid\": {t}, \
                 \"args\": {{\"name\": \"{name}\"}}}}"
            ),
            &mut out,
        );
    }

    // Spans, in the deterministic merged order.
    for (seq, s) in report.spans.iter().enumerate() {
        let parent = s
            .parent
            .map_or_else(|| "null".to_string(), |p| p.to_string());
        push(
            format!(
                "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"liquamod\", \"pid\": {}, \
                 \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \
                 \"args\": {{\"seq\": {seq}, \"depth\": {}, \"parent\": {parent}}}}}",
                s.name,
                pid(s.lane),
                s.worker,
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                s.depth,
            ),
            &mut out,
        );
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::super::report::SpanRecord;
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn trace_has_metadata_and_complete_events() {
        let report = ObsReport {
            spans: vec![
                SpanRecord {
                    name: "fleet.run",
                    lane: None,
                    parent: None,
                    depth: 0,
                    start_ns: 0,
                    dur_ns: 5_000,
                    worker: 0,
                },
                SpanRecord {
                    name: "fleet.segment",
                    lane: Some(2),
                    parent: Some(0),
                    depth: 1,
                    start_ns: 1_000,
                    dur_ns: 3_000,
                    worker: 1,
                },
            ],
            counters: BTreeMap::new(),
            events: vec![],
        };
        let trace = report.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\": ["));
        assert!(trace.contains("\"name\": \"process_name\""));
        assert!(trace.contains("\"name\": \"lane 2\""));
        assert!(trace.contains("\"name\": \"worker 1\""));
        assert!(trace.contains("\"ph\": \"X\""));
        // Lane 2 renders as pid 3; the span carries its parent seq.
        assert!(trace.contains("\"pid\": 3"));
        assert!(trace.contains("\"parent\": 0"));
        // Microsecond timestamps: 1000 ns = 1.000 µs.
        assert!(trace.contains("\"ts\": 1.000"));
    }
}
