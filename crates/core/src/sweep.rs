//! Parallel scenario-sweep engine: batch design-space exploration.
//!
//! The paper evaluates a handful of hand-picked scenarios; this module
//! turns the one-shot reproduction into a throughput-oriented explorer. A
//! [`SweepGrid`] spans the cartesian product of workload, heat-flux-scale
//! and flow-rate axes; [`run_sweep`] fans the variants out across worker
//! threads (or runs them serially for baselining) and collects one
//! [`SweepRow`] of thermal-balance metrics per variant into a single
//! comparable [`SweepReport`].
//!
//! Guarantees:
//!
//! * **Determinism** — results are independent of the execution mode and
//!   worker count: every variant evaluation is a pure function of its
//!   inputs, and `fd_threads` is pinned to 1 inside the sweep so the
//!   scenario-level parallelism owns the cores. Parallel and serial runs
//!   produce bitwise-identical rows. Warm starting keeps the guarantee
//!   because the scheduling unit is a whole flow-scale chain (see
//!   [`run_sweep`]).
//! * **Stable ordering** — rows come back in grid order (loads outermost,
//!   then flux scales, then flow scales) regardless of which worker
//!   finished first.
//! * **Warm-started chains** — within one (load, flux) block the optimizer
//!   starts from the previous flow scale's optimum
//!   ([`SweepOptions::warm_start`]; disable for the paper's cold-start
//!   baseline), which typically converges in a fraction of the cold-start
//!   evaluations while landing on the same optimum within the solver's
//!   tolerances.
//!
//! ```
//! use liquamod::prelude::*;
//! use liquamod::sweep::{run_sweep, ExecutionMode, LoadSpec, SweepGrid, SweepOptions};
//!
//! let grid = SweepGrid {
//!     loads: vec![LoadSpec::TestA],
//!     flux_scales: vec![1.0],
//!     flow_scales: vec![1.0, 1.25],
//! };
//! let mut options = SweepOptions::fast(ExecutionMode::parallel());
//! options.config.segments = 2;
//! options.config.mesh_intervals = 32;
//! let report = run_sweep(&grid, &options)?;
//! assert_eq!(report.rows.len(), 2);
//! // More coolant flow never hurts the gradient-optimal design.
//! assert!(report.rows[1].gradient_opt_k <= report.rows[0].gradient_opt_k * 1.05);
//! # Ok::<(), liquamod::CoreError>(())
//! ```

use crate::compare::DesignComparison;
use crate::design::OptimizationConfig;
use crate::obs;
use crate::scenario::strip_model;
use crate::{CoreError, CsvTable, Result};
use liquamod_floorplan::testcase::{self, StripLoad};
use liquamod_thermal_model::ModelParams;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Which workload a sweep variant evaluates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadSpec {
    /// The paper's Test A: uniform 50 W/cm² on both layers.
    TestA,
    /// The paper's Test B with an explicit seed: random 50–250 W/cm²
    /// segments on both layers.
    TestB {
        /// Seed of the deterministic segment draw.
        seed: u64,
    },
}

impl LoadSpec {
    /// Short label used in report rows.
    pub fn label(&self) -> String {
        match self {
            LoadSpec::TestA => "testA".to_string(),
            LoadSpec::TestB { seed } => format!("testB#{seed:x}"),
        }
    }

    /// Materializes the strip load, with every segment flux multiplied by
    /// `flux_scale`.
    pub fn strip_load(&self, flux_scale: f64) -> StripLoad {
        let mut load = match self {
            LoadSpec::TestA => testcase::test_a(),
            LoadSpec::TestB { seed } => testcase::test_b_seeded(*seed, testcase::TEST_B_SEGMENTS),
        };
        if flux_scale != 1.0 {
            for q in load
                .top_w_cm2
                .iter_mut()
                .chain(load.bottom_w_cm2.iter_mut())
            {
                *q *= flux_scale;
            }
        }
        load
    }
}

/// The axes of a sweep; variants are the cartesian product.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Workloads to evaluate.
    pub loads: Vec<LoadSpec>,
    /// Multipliers applied to every segment heat flux.
    pub flux_scales: Vec<f64>,
    /// Multipliers applied to the per-channel coolant flow rate.
    pub flow_scales: Vec<f64>,
}

impl SweepGrid {
    /// A 16-variant neighborhood of the paper's operating point: Test A and
    /// two Test-B draws × two flux levels plus a flow ladder. The default
    /// grid of the `sweep` binary.
    #[must_use]
    pub fn paper_neighborhood() -> Self {
        Self {
            loads: vec![
                LoadSpec::TestA,
                LoadSpec::TestB {
                    seed: testcase::TEST_B_DEFAULT_SEED,
                },
            ],
            flux_scales: vec![0.75, 1.0],
            flow_scales: vec![0.5, 0.75, 1.0, 1.5],
        }
    }

    /// Number of variants in the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loads.len() * self.flux_scales.len() * self.flow_scales.len()
    }

    /// `true` when any axis is empty (no variants).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into concrete variants, in stable report order:
    /// loads outermost, then flux scales, then flow scales.
    #[must_use]
    pub fn variants(&self) -> Vec<SweepVariant> {
        let mut out = Vec::with_capacity(self.len());
        for load in &self.loads {
            for &flux_scale in &self.flux_scales {
                for &flow_scale in &self.flow_scales {
                    out.push(SweepVariant {
                        index: out.len(),
                        load: load.clone(),
                        flux_scale,
                        flow_scale,
                    });
                }
            }
        }
        out
    }
}

/// One concrete point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepVariant {
    /// Position in grid order (also the row position in the report).
    pub index: usize,
    /// Workload.
    pub load: LoadSpec,
    /// Heat-flux multiplier.
    pub flux_scale: f64,
    /// Flow-rate multiplier.
    pub flow_scale: f64,
}

impl SweepVariant {
    /// Human-readable variant label, e.g. `testA q*0.75 f*1.50`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{} q*{:.2} f*{:.2}",
            self.load.label(),
            self.flux_scale,
            self.flow_scale
        )
    }
}

/// How the sweep schedules its variant evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// One variant after another on the calling thread (baseline for
    /// speedup measurements; bitwise-identical results to `Parallel`).
    Serial,
    /// Fan out across worker threads. `workers` of `None` uses the
    /// machine's available parallelism.
    Parallel {
        /// Worker-thread count override.
        workers: Option<NonZeroUsize>,
    },
}

impl ExecutionMode {
    /// Parallel mode sized to the machine.
    #[must_use]
    pub fn parallel() -> Self {
        ExecutionMode::Parallel { workers: None }
    }

    /// The worker count this mode resolves to before any grid-size cap:
    /// 1 for serial, the explicit override or the machine's available
    /// parallelism otherwise. Shared by the steady and transient sweeps so
    /// their scheduling can never drift apart.
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        match self {
            ExecutionMode::Serial => 1,
            ExecutionMode::Parallel { workers } => {
                workers.map(NonZeroUsize::get).unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
                })
            }
        }
    }
}

/// Configuration of one sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Baseline model parameters each variant perturbs.
    pub params: ModelParams,
    /// Optimizer configuration used for every variant. The sweep pins
    /// `fd_threads` to 1 during evaluation: cores belong to the
    /// scenario-level fan-out, and single-threaded finite differences keep
    /// results independent of the execution mode.
    pub config: OptimizationConfig,
    /// Scheduling mode.
    pub mode: ExecutionMode,
    /// Warm-start each variant's optimizer from the previous variant's
    /// optimum along the grid's flow-scale axis (the innermost axis, so the
    /// chained variants differ only in coolant flow and their optima are
    /// close). `false` is the cold-start escape hatch: every variant starts
    /// from the uniformly-maximal-width baseline, as in the paper.
    pub warm_start: bool,
}

impl SweepOptions {
    /// Paper parameters with the fast optimizer configuration and
    /// warm-started flow chains.
    #[must_use]
    pub fn fast(mode: ExecutionMode) -> Self {
        Self {
            params: ModelParams::date2012(),
            config: OptimizationConfig::fast(),
            mode,
            warm_start: true,
        }
    }

    /// The worker count this sweep will actually use.
    pub fn resolved_workers(&self) -> usize {
        self.mode.resolved_workers()
    }
}

/// Thermal-balance metrics of one evaluated variant.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The variant the metrics belong to.
    pub variant: SweepVariant,
    /// Gradient of the uniformly-minimum-width baseline, kelvin.
    pub gradient_min_k: f64,
    /// Gradient of the uniformly-maximum-width baseline, kelvin.
    pub gradient_max_k: f64,
    /// Gradient of the optimally modulated design, kelvin.
    pub gradient_opt_k: f64,
    /// Gradient reduction vs the best uniform baseline, fraction in [0, 1].
    pub gradient_reduction: f64,
    /// Peak silicon temperature of the optimal design, °C.
    pub peak_opt_celsius: f64,
    /// Largest per-channel pressure drop of the optimal design, bar.
    pub max_pressure_opt_bar: f64,
    /// Pump power of the optimal design, watts.
    pub pump_power_opt_w: f64,
    /// Objective evaluations the optimizer spent.
    pub evaluations: usize,
    /// Whether the optimizer met the pressure constraints.
    pub feasible: bool,
}

impl SweepRow {
    /// Formats the row for [`SweepReport::to_table`].
    fn table_cells(&self) -> Vec<String> {
        vec![
            self.variant.label(),
            format!("{:.3}", self.gradient_min_k),
            format!("{:.3}", self.gradient_max_k),
            format!("{:.3}", self.gradient_opt_k),
            format!("{:.1}", self.gradient_reduction * 100.0),
            format!("{:.2}", self.peak_opt_celsius),
            format!("{:.3}", self.max_pressure_opt_bar),
            format!("{:.4}", self.pump_power_opt_w),
            format!("{}", self.evaluations),
            if self.feasible { "yes" } else { "no" }.to_string(),
        ]
    }
}

/// The collected result of one sweep invocation.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One row per variant, in grid order.
    pub rows: Vec<SweepRow>,
    /// Worker threads the run actually used: the requested count capped at
    /// the number of flow-scale chains (the unit of scheduling).
    pub workers: usize,
    /// Wall-clock time of the evaluation phase.
    pub wall: Duration,
    /// Whether the run chained warm starts along the flow-scale axis.
    pub warm_start: bool,
}

impl SweepReport {
    /// Renders the report as the workspace's standard table format.
    #[must_use]
    pub fn to_table(&self) -> CsvTable {
        let mut table = CsvTable::new(vec![
            "variant",
            "grad min [K]",
            "grad max [K]",
            "grad opt [K]",
            "reduction [%]",
            "peak opt [degC]",
            "max dP opt [bar]",
            "pump opt [W]",
            "evals",
            "feasible",
        ]);
        for row in &self.rows {
            table.push_row(row.table_cells());
        }
        table
    }

    /// The row whose optimal design has the smallest thermal gradient.
    #[must_use]
    pub fn best_by_gradient(&self) -> Option<&SweepRow> {
        self.rows.iter().min_by(|a, b| {
            a.gradient_opt_k
                .partial_cmp(&b.gradient_opt_k)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Evaluated variants per wall-clock second.
    #[must_use]
    pub fn throughput_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.rows.len() as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Total optimizer objective (BVP) evaluations across all rows.
    #[must_use]
    pub fn total_evaluations(&self) -> usize {
        self.rows.iter().map(|r| r.evaluations).sum()
    }
}

/// Evaluates one variant: perturb the parameters, build the strip model and
/// run the full minimum/maximum/optimal comparison (cold start).
///
/// # Errors
///
/// Propagates model-construction and optimizer failures.
pub fn evaluate_variant(
    variant: &SweepVariant,
    params: &ModelParams,
    config: &OptimizationConfig,
) -> Result<SweepRow> {
    evaluate_variant_warm(variant, params, config, None).map(|(row, _)| row)
}

/// [`evaluate_variant`] with an optional optimizer warm start; also returns
/// the normalized optimum for chaining into the next variant.
///
/// # Errors
///
/// Propagates model-construction and optimizer failures.
fn evaluate_variant_warm(
    variant: &SweepVariant,
    params: &ModelParams,
    config: &OptimizationConfig,
    start: Option<&[f64]>,
) -> Result<(SweepRow, Vec<f64>)> {
    let _span = obs::span("sweep.variant");
    if start.is_some() {
        obs::add("optimizer.warm_start_hits", 1);
    }
    let load = variant.load.strip_load(variant.flux_scale);
    // The base parameters are only cloned when the variant actually perturbs
    // them; `strip_model` hands the (possibly borrowed) set to the model.
    let model = if variant.flow_scale == 1.0 {
        strip_model(&load, params)?
    } else {
        let mut scaled = params.clone();
        scaled.flow_rate_per_channel = scaled.flow_rate_per_channel * variant.flow_scale;
        strip_model(&load, &scaled)?
    };
    let cmp = DesignComparison::run_warm(&model, config, start)?;
    obs::add("optimizer.evaluations", cmp.outcome.evaluations as u64);
    let row = SweepRow {
        variant: variant.clone(),
        gradient_min_k: cmp.minimum.gradient_k,
        gradient_max_k: cmp.maximum.gradient_k,
        gradient_opt_k: cmp.optimal.gradient_k,
        gradient_reduction: cmp.gradient_reduction(),
        peak_opt_celsius: cmp.optimal.peak_celsius,
        max_pressure_opt_bar: cmp.optimal.max_pressure_bar,
        pump_power_opt_w: cmp.optimal.pump_power_w,
        evaluations: cmp.outcome.evaluations,
        feasible: cmp.outcome.feasible,
    };
    Ok((row, cmp.outcome.x_opt))
}

/// Evaluates one flow-scale chain of variants in order, threading each
/// optimum into the next variant's start when `warm_start` is set.
fn evaluate_chain(
    chain: &[SweepVariant],
    params: &ModelParams,
    config: &OptimizationConfig,
    warm_start: bool,
) -> Vec<Result<SweepRow>> {
    let _span = obs::span("sweep.chain");
    let mut out = Vec::with_capacity(chain.len());
    let mut prev: Option<Vec<f64>> = None;
    for variant in chain {
        let start = if warm_start { prev.as_deref() } else { None };
        match evaluate_variant_warm(variant, params, config, start) {
            Ok((row, x_opt)) => {
                prev = Some(x_opt);
                out.push(Ok(row));
            }
            Err(e) => {
                prev = None;
                out.push(Err(e));
            }
        }
    }
    out
}

/// Runs every variant of `grid` under `options` and collects the report.
///
/// Rows come back in grid order whatever the scheduling; parallel and
/// serial runs of the same grid produce bitwise-identical rows (see the
/// module docs for why). Warm starting preserves that guarantee: the unit of
/// scheduling is a whole flow-scale chain (the innermost-axis run of
/// variants sharing a load and flux scale), evaluated sequentially on one
/// worker, so each variant's starting point is independent of the execution
/// mode. Cold-started sweeps have no inter-variant dependency, so each
/// variant is scheduled individually.
///
/// # Errors
///
/// Every variant is evaluated regardless of failures (so serial and
/// parallel runs behave identically); the sweep then returns the first
/// failure in grid order and discards the partial report.
pub fn run_sweep(grid: &SweepGrid, options: &SweepOptions) -> Result<SweepReport> {
    let variants = grid.variants();
    let workers = options.resolved_workers().max(1);
    // Scenario-level fan-out owns the cores; see `SweepOptions::config`.
    let config = OptimizationConfig {
        fd_threads: 1,
        ..options.config.clone()
    };
    // Grid order is loads → flux → flow, so each chunk of `flow_scales.len()`
    // consecutive variants is one flow-scale chain. Cold-started variants
    // are independent, so each one is its own scheduling unit and the full
    // per-variant parallelism is available.
    let chain_len = if options.warm_start {
        grid.flow_scales.len().max(1)
    } else {
        1
    };
    let chains: Vec<&[SweepVariant]> = variants.chunks(chain_len).collect();
    // A whole chain is the unit of scheduling, so more workers than chains
    // can never run; record the count that actually did.
    let workers = if chains.len() <= 1 {
        1
    } else {
        workers.min(chains.len())
    };

    // A chain is labelled by its first variant — enough to identify the
    // scheduling unit in a `WorkerPanicked` report.
    let chain_label = |c: &&[SweepVariant]| {
        c.first()
            .map_or_else(|| "empty chain".to_string(), |v| v.label())
    };
    let eval =
        |c: &&[SweepVariant]| evaluate_chain(c, &options.params, &config, options.warm_start);
    let start = Instant::now();
    let chain_results: Vec<Vec<Result<SweepRow>>> = if workers == 1 {
        chains
            .iter()
            .map(|c| catch_unit(c, &chain_label, &eval))
            .collect::<Result<Vec<_>>>()?
    } else {
        parallel_map(&chains, workers, chain_label, eval)?
    };
    let wall = start.elapsed();

    let rows = chain_results
        .into_iter()
        .flatten()
        .collect::<Result<Vec<SweepRow>>>()?;
    Ok(SweepReport {
        rows,
        workers,
        wall,
        warm_start: options.warm_start,
    })
}

/// Shared scheduling wrapper of the independent-variant sweeps
/// ([`crate::transient::run_transient_sweep`],
/// [`crate::mpsoc::run_mpsoc_sweep`]; the steady [`run_sweep`] schedules
/// whole warm-start chains instead): clamps the requested worker count to
/// the variant count, times the evaluation, fans out through
/// [`parallel_map`], and resolves to the rows — or the first failure in
/// grid order, discarding the partial result. Returns
/// `(rows, workers used, wall time)`.
pub(crate) fn run_variant_sweep<V: Sync, R: Send>(
    variants: &[V],
    requested_workers: usize,
    label: impl Fn(&V) -> String + Sync,
    eval: impl Fn(&V) -> Result<R> + Sync,
) -> Result<(Vec<R>, usize, Duration)> {
    let workers = if variants.len() <= 1 {
        1
    } else {
        requested_workers.max(1).min(variants.len())
    };
    let start = Instant::now();
    let results: Vec<Result<R>> = if workers == 1 {
        variants
            .iter()
            .map(|v| catch_unit(v, &label, &eval))
            .collect::<Result<Vec<_>>>()?
    } else {
        parallel_map(variants, workers, label, eval)?
    };
    let wall = start.elapsed();
    let rows = results.into_iter().collect::<Result<Vec<_>>>()?;
    Ok((rows, workers, wall))
}

/// Stringifies a worker panic payload — `panic!`/`assert!` carry `&str` or
/// `String`; anything else is reported generically.
fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates one scheduling unit behind the panic boundary every fan-out
/// shares: a panic inside `f` becomes [`CoreError::WorkerPanicked`]
/// carrying the unit's label instead of unwinding the whole process — a
/// served host must degrade, not die. `AssertUnwindSafe` is sound here
/// because an `Err` discards every result of the fan-out, so no state
/// poisoned mid-panic is ever observed.
pub(crate) fn catch_unit<T, R>(
    item: &T,
    label: &(impl Fn(&T) -> String + ?Sized),
    f: &(impl Fn(&T) -> R + ?Sized),
) -> Result<R> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))).map_err(|p| {
        CoreError::WorkerPanicked {
            unit: label(item),
            payload: panic_payload(p),
        }
    })
}

/// Maps `f` over `items` on `workers` threads, preserving input order in
/// the output. Work is distributed dynamically (an atomic cursor) so slow
/// variants don't serialize behind a static partition. Shared with the
/// transient sweep ([`crate::transient::run_transient_sweep`]), the fleet
/// wavefront scheduler and the serve session pool.
///
/// A panicking unit surfaces as [`CoreError::WorkerPanicked`] labelled via
/// `label`; when several units panic, the first in **item order** wins, so
/// the reported unit is independent of thread interleaving.
///
/// When an [`crate::obs`] session is recording, each unit's spans,
/// counters and events are captured from the worker's thread-local buffer
/// right after the unit finishes and absorbed into the caller's buffer in
/// **item order** after the index sort — the observability twin of the
/// bitwise parallel==serial result guarantee: record *content* is
/// independent of the worker count (wall-clock timestamps and worker ids
/// are the only fields that vary, and the deterministic exports exclude
/// them).
pub(crate) fn parallel_map<T, R, F, N>(
    items: &[T],
    workers: usize,
    label: N,
    f: F,
) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    N: Fn(&T) -> String + Sync,
{
    let cursor = AtomicUsize::new(0);
    let workers = workers.min(items.len()).max(1);
    // The worker closures `move` their 1-based id and borrow the rest.
    let (cursor, label, f) = (&cursor, &label, &f);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let worker_tag = (w + 1) as u32;
                    let mut chunk = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let result = catch_unit(&items[i], label, f);
                        let unit_obs = obs::capture_unit().map(|mut u| {
                            u.tag_worker(worker_tag);
                            u
                        });
                        chunk.push((i, result, unit_obs));
                    }
                    chunk
                })
            })
            .collect();
        let mut indexed: Vec<(usize, Result<R>, Option<obs::UnitObs>)> = handles
            .into_iter()
            .flat_map(|h| {
                h.join()
                    .expect("workers catch unit panics, so joining cannot fail")
            })
            .collect();
        indexed.sort_by_key(|(i, _, _)| *i);
        indexed
            .into_iter()
            .map(|(_, r, unit_obs)| {
                if let Some(u) = unit_obs {
                    obs::absorb_unit(u);
                }
                r
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smallest configuration that still runs the whole design flow.
    fn tiny_config() -> OptimizationConfig {
        OptimizationConfig {
            segments: 2,
            mesh_intervals: 32,
            ..OptimizationConfig::fast()
        }
    }

    fn tiny_options(mode: ExecutionMode) -> SweepOptions {
        SweepOptions {
            config: tiny_config(),
            ..SweepOptions::fast(mode)
        }
    }

    fn small_grid() -> SweepGrid {
        SweepGrid {
            loads: vec![LoadSpec::TestA, LoadSpec::TestB { seed: 7 }],
            flux_scales: vec![1.0],
            flow_scales: vec![0.75, 1.0],
        }
    }

    #[test]
    fn grid_expansion_order_and_len() {
        let grid = SweepGrid {
            loads: vec![LoadSpec::TestA, LoadSpec::TestB { seed: 1 }],
            flux_scales: vec![0.5, 1.0],
            flow_scales: vec![1.0, 2.0],
        };
        assert_eq!(grid.len(), 8);
        assert!(!grid.is_empty());
        let variants = grid.variants();
        assert_eq!(variants.len(), 8);
        // Loads outermost, flow innermost, indices sequential.
        assert_eq!(variants[0].label(), "testA q*0.50 f*1.00");
        assert_eq!(variants[1].label(), "testA q*0.50 f*2.00");
        assert_eq!(variants[2].label(), "testA q*1.00 f*1.00");
        assert_eq!(variants[4].load, LoadSpec::TestB { seed: 1 });
        assert!(variants.iter().enumerate().all(|(i, v)| v.index == i));
    }

    #[test]
    fn empty_grid_yields_empty_report() {
        let grid = SweepGrid {
            loads: vec![],
            flux_scales: vec![1.0],
            flow_scales: vec![1.0],
        };
        assert!(grid.is_empty());
        let report = run_sweep(&grid, &tiny_options(ExecutionMode::parallel())).unwrap();
        assert!(report.rows.is_empty());
        assert!(report.to_table().is_empty());
        assert!(report.best_by_gradient().is_none());
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let grid = small_grid();
        let serial = run_sweep(&grid, &tiny_options(ExecutionMode::Serial)).unwrap();
        let parallel = run_sweep(
            &grid,
            &tiny_options(ExecutionMode::Parallel {
                workers: NonZeroUsize::new(3),
            }),
        )
        .unwrap();
        assert_eq!(serial.rows.len(), grid.len());
        // PartialEq on SweepRow compares every f64 exactly — bitwise equality.
        assert_eq!(serial.rows, parallel.rows);
        assert_eq!(serial.workers, 1);
        // The grid has two flow-scale chains, so a requested 3 workers is
        // capped at the 2 that can actually run.
        assert_eq!(parallel.workers, 2);
    }

    #[test]
    fn report_rows_follow_grid_order() {
        let grid = small_grid();
        let report = run_sweep(
            &grid,
            &tiny_options(ExecutionMode::Parallel {
                workers: NonZeroUsize::new(2),
            }),
        )
        .unwrap();
        let expected: Vec<String> = grid.variants().iter().map(SweepVariant::label).collect();
        let got: Vec<String> = report.rows.iter().map(|r| r.variant.label()).collect();
        assert_eq!(got, expected);
        // The table mirrors the rows.
        let table = report.to_table();
        assert_eq!(table.len(), grid.len());
    }

    #[test]
    fn flux_scaling_scales_the_load() {
        let base = LoadSpec::TestB { seed: 3 }.strip_load(1.0);
        let scaled = LoadSpec::TestB { seed: 3 }.strip_load(2.0);
        for (b, s) in base.top_w_cm2.iter().zip(&scaled.top_w_cm2) {
            assert!((s - 2.0 * b).abs() < 1e-12);
        }
        assert_eq!(base.top_w_cm2.len(), scaled.top_w_cm2.len());
    }

    #[test]
    fn rows_carry_physical_metrics() {
        let grid = SweepGrid {
            loads: vec![LoadSpec::TestA],
            flux_scales: vec![1.0],
            flow_scales: vec![1.0],
        };
        let report = run_sweep(&grid, &tiny_options(ExecutionMode::Serial)).unwrap();
        let row = &report.rows[0];
        // Optimal modulation beats the best uniform baseline (paper Fig. 5).
        assert!(row.gradient_opt_k < row.gradient_min_k.min(row.gradient_max_k));
        assert!(row.gradient_reduction > 0.0);
        assert!(row.peak_opt_celsius > 26.85, "above the 300 K inlet");
        assert!(row.max_pressure_opt_bar > 0.0);
        assert!(row.pump_power_opt_w > 0.0);
        assert!(row.evaluations > 0);
        assert!(report.throughput_per_second() > 0.0);
        assert_eq!(report.best_by_gradient().unwrap().variant.index, 0);
    }

    #[test]
    fn paper_neighborhood_is_sixteen_variants() {
        assert_eq!(SweepGrid::paper_neighborhood().len(), 16);
    }

    #[test]
    fn warm_start_matches_cold_start_within_tolerance() {
        // Warm-started chains must land on the same optima as cold starts,
        // within the optimizer's (loose, fast-config) convergence tolerance,
        // while spending no more evaluations in total.
        let grid = SweepGrid {
            loads: vec![LoadSpec::TestA],
            flux_scales: vec![1.0],
            flow_scales: vec![0.75, 1.0, 1.25],
        };
        let warm = run_sweep(&grid, &tiny_options(ExecutionMode::Serial)).unwrap();
        let cold = run_sweep(
            &grid,
            &SweepOptions {
                warm_start: false,
                ..tiny_options(ExecutionMode::Serial)
            },
        )
        .unwrap();
        assert!(warm.warm_start);
        assert!(!cold.warm_start);
        assert_eq!(warm.rows.len(), cold.rows.len());
        for (w, c) in warm.rows.iter().zip(&cold.rows) {
            // Uniform baselines don't involve the optimizer at all.
            assert_eq!(w.gradient_min_k.to_bits(), c.gradient_min_k.to_bits());
            assert_eq!(w.gradient_max_k.to_bits(), c.gradient_max_k.to_bits());
            let rel = (w.gradient_opt_k - c.gradient_opt_k).abs() / c.gradient_opt_k;
            assert!(
                rel < 0.05,
                "{}: warm {} K vs cold {} K (rel {rel})",
                w.variant.label(),
                w.gradient_opt_k,
                c.gradient_opt_k
            );
            assert_eq!(w.feasible, c.feasible, "{}", w.variant.label());
        }
        assert!(
            warm.total_evaluations() <= cold.total_evaluations(),
            "warm {} evals vs cold {}",
            warm.total_evaluations(),
            cold.total_evaluations()
        );
    }

    #[test]
    fn parallel_map_preserves_order_under_contention() {
        let items: Vec<usize> = (0..97).collect();
        let out = parallel_map(&items, 5, |&x| format!("item {x}"), |&x| x * 3).unwrap();
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        // Degenerate worker counts still work.
        let out = parallel_map(&items, 200, |&x| format!("item {x}"), |&x| x + 1).unwrap();
        assert_eq!(out.len(), 97);
    }

    #[test]
    fn worker_panic_is_a_typed_error_not_a_crash() {
        // Before `catch_unit`, the join did `.expect("sweep worker
        // panicked")` and took the whole process down with the variant.
        let items: Vec<usize> = (0..16).collect();
        let err = parallel_map(
            &items,
            4,
            |&x| format!("unit {x}"),
            |&x| {
                assert!(x != 11, "injected failure on item 11");
                x * 2
            },
        )
        .unwrap_err();
        match err {
            CoreError::WorkerPanicked { unit, payload } => {
                assert_eq!(unit, "unit 11");
                assert!(payload.contains("injected failure"), "payload: {payload}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // Several panicking units: the first in item order wins, whatever
        // the thread interleaving.
        let err = parallel_map(
            &items,
            4,
            |&x| format!("unit {x}"),
            |&x| {
                assert!(x < 5, "boom");
                x
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::WorkerPanicked { ref unit, .. } if unit == "unit 5"
        ));
        // The serial path degrades identically (parallel == serial).
        let err = run_variant_sweep(
            &items,
            1,
            |&x| format!("unit {x}"),
            |&x| -> Result<usize> {
                assert!(x != 3, "serial failure");
                Ok(x)
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::WorkerPanicked { ref unit, .. } if unit == "unit 3"
        ));
    }
}
