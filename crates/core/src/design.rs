//! The optimal channel-modulation design flow (paper §IV).
//!
//! Decision variables are the per-segment channel widths of every column,
//! normalized to `[0, 1]` over the manufacturable range `[w_min, w_max]`
//! (normalization keeps the finite-difference steps and the box geometry
//! well-conditioned; raw widths are ~1e-5 m). Each objective evaluation
//! applies the candidate widths, solves the §III boundary-value problem and
//! integrates the paper's Eq. (7) cost. Pressure bounds (Eq. 9) and the
//! equal-pressure coupling (Eq. 10) enter as augmented-Lagrangian
//! constraints; pressure evaluations are closed-form integrals, so the
//! constraint side costs nothing compared to the thermal solves.

use crate::{CoreError, Result};
use liquamod_optimal_control::{
    augmented_lagrangian, augmented_lagrangian_warm, nelder_mead, projected_gradient,
    AugLagOptions, AugLagResult, AugLagWarmStart, Bounds, ConstrainedObjective, LbfgsOptions,
    NelderMeadOptions, ProjGradOptions,
};
use liquamod_thermal_model::{
    Model, Solution, SolveOptions, SolveWorkspace, WidthProfile, WorkspacePool,
};
use liquamod_units::{Length, Pressure};

/// Which cost integral to minimize (the paper notes the two are equivalent
/// through the conduction law `dT/dz = −q/ĝ_l`; both are provided for the
/// ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObjectiveKind {
    /// `∫ ‖dT/dz‖² dz` — the paper's Eq. (7).
    #[default]
    GradientSquared,
    /// `∫ ‖q‖² dz` — the heat-flow form suggested in §IV-A.
    HeatflowSquared,
}

/// Which NLP solver drives the (inner) minimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Projected L-BFGS inside an augmented Lagrangian (default).
    #[default]
    LbfgsB,
    /// Projected gradient descent (ablation baseline; pressure constraints
    /// are ignored apart from the width box, so use only for studies).
    ProjGrad,
    /// Nelder–Mead simplex (derivative-free ablation baseline; pressure
    /// constraints are ignored apart from the width box).
    NelderMead,
}

/// Configuration of one design-flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationConfig {
    /// Piecewise-constant segments per column (the control resolution `K`).
    pub segments: usize,
    /// Base mesh intervals for each BVP solve.
    pub mesh_intervals: usize,
    /// Cost integral to minimize.
    pub objective: ObjectiveKind,
    /// Enforce the paper's Eq. (10) equal-pressure coupling across columns.
    pub equal_pressure: bool,
    /// NLP solver choice.
    pub solver: SolverKind,
    /// Outer/inner constrained-solver options.
    pub auglag: AugLagOptions,
    /// Inner-iteration cap for *resumed* solves ([`optimize_resumed`] with
    /// dual state): a resumed epoch starts at the previous optimum with
    /// converged multipliers, so after the first few refinement iterations
    /// the remaining budget only polishes finite-difference noise. `None`
    /// keeps the full `auglag.inner.max_iterations` budget for resumed
    /// solves too. Cold solves (and plain [`optimize_warm`]) are never
    /// capped by this.
    pub resume_inner_iterations: Option<usize>,
    /// Outer-iteration cap for *resumed* solves, the dual-side twin of
    /// `resume_inner_iterations`. With warm multipliers each outer
    /// iteration is one capped primal solve plus one multiplier update, so
    /// `Some(1)` turns every resumed epoch into a single real-time-style
    /// correction step; the multiplier updates still accumulate *across*
    /// epochs because the controller carries the dual state forward, and
    /// the adopt-only-if-not-worse rule discards any correction that
    /// converged too little to help. `None` keeps the full
    /// `auglag.max_outer_iterations` budget. Cold solves are never capped.
    pub resume_outer_iterations: Option<usize>,
    /// Worker threads for finite-difference gradients.
    pub fd_threads: usize,
}

impl Default for OptimizationConfig {
    fn default() -> Self {
        Self {
            segments: 16,
            mesh_intervals: 384,
            objective: ObjectiveKind::default(),
            equal_pressure: true,
            solver: SolverKind::default(),
            auglag: AugLagOptions {
                max_outer_iterations: 8,
                violation_tol: 1e-4,
                initial_penalty: 10.0,
                inner: LbfgsOptions {
                    max_iterations: 60,
                    stationarity_tol: 1e-7,
                    improvement_tol: 1e-8,
                    ..LbfgsOptions::default()
                },
                ..AugLagOptions::default()
            },
            resume_inner_iterations: Some(8),
            resume_outer_iterations: Some(1),
            fd_threads: default_threads(),
        }
    }
}

impl OptimizationConfig {
    /// A coarse, fast configuration for tests and doc examples: fewer
    /// segments, a coarse mesh and tight iteration caps. Accuracy is
    /// enough to demonstrate every qualitative result.
    pub fn fast() -> Self {
        Self {
            segments: 8,
            mesh_intervals: 96,
            auglag: AugLagOptions {
                max_outer_iterations: 4,
                violation_tol: 1e-3,
                initial_penalty: 10.0,
                inner: LbfgsOptions {
                    max_iterations: 25,
                    stationarity_tol: 1e-6,
                    improvement_tol: 1e-7,
                    ..LbfgsOptions::default()
                },
                ..AugLagOptions::default()
            },
            ..Self::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if self.segments == 0 {
            return Err(CoreError::InvalidConfig {
                what: "segments must be ≥ 1".into(),
            });
        }
        if self.mesh_intervals == 0 {
            return Err(CoreError::InvalidConfig {
                what: "mesh_intervals must be ≥ 1".into(),
            });
        }
        Ok(())
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(16)
}

/// Outcome of an optimal channel-modulation run.
#[derive(Debug, Clone)]
pub struct DesignOutcome {
    /// The model with the optimal width profiles applied.
    pub model: Model,
    /// Thermal solution at the optimum.
    pub solution: Solution,
    /// Optimal per-column width profiles.
    pub widths: Vec<WidthProfile>,
    /// The optimum in the solver's normalized coordinates (per-segment
    /// widths mapped to `[0, 1]` over `[w_min, w_max]`); feed it to
    /// [`optimize_warm`] to warm-start a neighbouring scenario.
    pub x_opt: Vec<f64>,
    /// Per-column (per physical channel) pressure drops at the optimum.
    pub pressure_drops: Vec<Pressure>,
    /// Final objective value.
    pub objective: f64,
    /// Total BVP/objective evaluations spent.
    pub evaluations: usize,
    /// Whether pressure constraints were met (within the solver tolerance).
    pub feasible: bool,
}

/// Resumable optimizer state linking successive design solves.
///
/// The receding-horizon transient loop re-optimizes the same width problem
/// every reallocation epoch under a mildly drifting load. Carrying the
/// converged primal point *and* the augmented-Lagrangian dual state
/// (multipliers + penalty) from the previous epoch lets the next solve skip
/// the penalty continuation entirely: the first inner L-BFGS solve starts
/// at (or near) the stationary point of the *final* inner problem, which in
/// practice collapses a warm epoch from thousands of BVP evaluations to a
/// few hundred. Obtain one from [`optimize_resumed`] and feed it back to the
/// next call.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignWarmStart {
    /// Converged point in the solver's normalized `[0, 1]` coordinates.
    pub x: Vec<f64>,
    /// Inequality (pressure-cap) multiplier estimates `ν`.
    pub inequality_multipliers: Vec<f64>,
    /// Equality (equal-pressure coupling) multiplier estimates `λ`.
    pub equality_multipliers: Vec<f64>,
    /// Penalty parameter `μ` the previous solve finished at.
    pub penalty: f64,
}

struct WidthProblem<'a> {
    base: &'a Model,
    config: &'a OptimizationConfig,
    n_cols: usize,
    w_min: f64,
    w_max: f64,
    dp_max: f64,
    solve: SolveOptions,
    /// Objective normalization: the cost at the starting point. The raw
    /// Eq. (7) integral is O(1e4–1e6) while the normalized pressure
    /// constraints are O(1); without this scaling the augmented-Lagrangian
    /// penalties would be invisible next to the objective.
    j_scale: f64,
    /// Per-worker [`SolveWorkspace`]s: every objective evaluation solves the
    /// BVP through a pooled workspace, so the mesh and banded-system buffers
    /// are built once per worker and recycled across the whole run
    /// (including every line-search and finite-difference evaluation).
    pool: WorkspacePool,
}

impl WidthProblem<'_> {
    fn widths_from_x(&self, x: &[f64]) -> Vec<WidthProfile> {
        let k = self.config.segments;
        (0..self.n_cols)
            .map(|c| {
                let widths = x[c * k..(c + 1) * k]
                    .iter()
                    .map(|t| {
                        // Deliberately NOT clamped to [0, 1]: finite-difference
                        // probes step just outside the box at active bounds,
                        // and clamping them would zero the gradient there
                        // (the optimizer's box keeps actual iterates inside).
                        // The wide guard only protects duct validity.
                        let t = t.clamp(-0.1, 1.1);
                        Length::from_meters(self.w_min + t * (self.w_max - self.w_min))
                    })
                    .collect();
                WidthProfile::piecewise_constant(widths)
            })
            .collect()
    }

    fn model_with(&self, x: &[f64]) -> Model {
        let mut model = self.base.clone();
        for (c, w) in self.widths_from_x(x).into_iter().enumerate() {
            model
                .set_width_profile(c, w)
                .expect("normalized widths stay inside (0, pitch)");
        }
        model
    }

    fn pressure_drops(&self, x: &[f64]) -> Vec<f64> {
        // Pressure depends only on the widths, the parameters and the
        // length, all of which the *base* model already carries — no need to
        // clone a model just to apply the candidate widths.
        self.widths_from_x(x)
            .iter()
            .map(|w| {
                self.base
                    .column_pressure_drop(w)
                    .expect("normalized widths are valid ducts")
                    .as_pascals()
            })
            .collect()
    }

    fn raw_objective(&self, x: &[f64]) -> f64 {
        let model = self.model_with(x);
        // Cost-only solve: skips the Solution profile materialization while
        // producing bit-identical integrals (see `Model::solve_costs_with`).
        let solved = self.pool.with(|ws| model.solve_costs_with(&self.solve, ws));
        match solved {
            Ok(costs) => match self.config.objective {
                ObjectiveKind::GradientSquared => costs.gradient_squared,
                ObjectiveKind::HeatflowSquared => costs.heatflow_squared,
            },
            // Infinite cost steers the line search away from pathological
            // candidates instead of aborting the whole run.
            Err(_) => f64::INFINITY,
        }
    }
}

impl ConstrainedObjective for WidthProblem<'_> {
    fn dim(&self) -> usize {
        self.n_cols * self.config.segments
    }

    fn objective(&self, x: &[f64]) -> f64 {
        self.raw_objective(x) / self.j_scale
    }

    fn inequality(&self, x: &[f64]) -> Vec<f64> {
        // ΔPᵢ/ΔP_max − 1 ≤ 0 (paper Eq. 9).
        self.pressure_drops(x)
            .iter()
            .map(|dp| dp / self.dp_max - 1.0)
            .collect()
    }

    fn equality(&self, x: &[f64]) -> Vec<f64> {
        // (ΔPᵢ − mean)/ΔP_max = 0 (paper Eq. 10), only with several columns.
        if !self.config.equal_pressure || self.n_cols < 2 {
            return Vec::new();
        }
        let drops = self.pressure_drops(x);
        let mean = drops.iter().sum::<f64>() / drops.len() as f64;
        drops.iter().map(|dp| (dp - mean) / self.dp_max).collect()
    }
}

/// Runs the optimal channel-modulation flow on `model` (whose current width
/// profiles are ignored; the optimizer starts from uniformly maximal
/// widths, the paper's common baseline).
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] for empty segment/mesh settings, and
/// propagated model errors if the optimized design cannot be re-solved.
pub fn optimize(model: &Model, config: &OptimizationConfig) -> Result<DesignOutcome> {
    optimize_warm(model, config, None)
}

/// [`optimize`] with an optional warm start.
///
/// `start` is a point in the solver's normalized coordinates — typically the
/// [`DesignOutcome::x_opt`] of a neighbouring scenario (the sweep engine
/// chains variants along its flow-scale axis this way). It is projected into
/// the `[0, 1]` box before use. The objective normalization stays anchored
/// at the uniformly-maximal-width point regardless of the start, so a
/// warm-started run minimizes exactly the same scaled problem as a cold one
/// and converges to the same optimum (within the solver's tolerances) in
/// fewer evaluations.
///
/// # Errors
///
/// Same as [`optimize`]; additionally rejects a `start` of the wrong
/// dimension.
pub fn optimize_warm(
    model: &Model,
    config: &OptimizationConfig,
    start: Option<&[f64]>,
) -> Result<DesignOutcome> {
    optimize_inner(model, config, start, None).map(|(outcome, _)| outcome)
}

/// [`optimize_warm`] resuming both the primal point *and* the
/// augmented-Lagrangian dual state of a previous solve.
///
/// Passing `warm = None` is identical to a cold [`optimize`]. With a
/// [`DesignWarmStart`] from a previous epoch, the solve seeds the start
/// point from `warm.x` (projected, pressure-feasibility-repaired as in
/// [`optimize_warm`]) and the multipliers/penalty from the stored dual
/// state. Dual seeding only applies to the default [`SolverKind::LbfgsB`]
/// path; the ablation solvers use `warm.x` alone. Returns the outcome plus
/// the warm start for the *next* solve.
///
/// # Errors
///
/// Same as [`optimize_warm`].
pub fn optimize_resumed(
    model: &Model,
    config: &OptimizationConfig,
    warm: Option<&DesignWarmStart>,
) -> Result<(DesignOutcome, DesignWarmStart)> {
    let dual = warm.map(|w| AugLagWarmStart {
        inequality_multipliers: w.inequality_multipliers.clone(),
        equality_multipliers: w.equality_multipliers.clone(),
        penalty: w.penalty,
    });
    optimize_inner(model, config, warm.map(|w| w.x.as_slice()), dual.as_ref())
}

fn optimize_inner(
    model: &Model,
    config: &OptimizationConfig,
    start: Option<&[f64]>,
    dual: Option<&AugLagWarmStart>,
) -> Result<(DesignOutcome, DesignWarmStart)> {
    config.validate()?;
    let params = model.params();
    let mut problem = WidthProblem {
        base: model,
        config,
        n_cols: model.columns().len(),
        w_min: params.w_min.si(),
        w_max: params.w_max.si(),
        dp_max: params.dp_max.si(),
        solve: SolveOptions::with_mesh_intervals(config.mesh_intervals),
        j_scale: 1.0,
        pool: WorkspacePool::new(),
    };
    let dim = ConstrainedObjective::dim(&problem);
    if let Some(s) = start {
        if s.len() != dim {
            return Err(CoreError::InvalidConfig {
                what: format!("warm start has dimension {}, problem needs {dim}", s.len()),
            });
        }
    }
    let bounds = Bounds::uniform(dim, 0.0, 1.0)?;
    // The normalization anchor is always the uniformly-w_max point (the
    // paper's baseline), even when warm-starting elsewhere.
    let anchor = vec![1.0; dim];
    let j0 = problem.raw_objective(&anchor);
    if !(j0.is_finite() && j0 > 0.0) {
        return Err(CoreError::InvalidConfig {
            what: format!("cost at the starting point is unusable ({j0})"),
        });
    }
    problem.j_scale = j0;
    let x0 = match start {
        Some(s) => {
            // Project into the [0, 1] box (identity for in-box starts, so
            // sweep warm-starting is unaffected).
            let boxed: Vec<f64> = s.iter().map(|v| v.clamp(0.0, 1.0)).collect();
            feasible_warm_start(&problem, &boxed)
        }
        None => anchor,
    };

    let (x_opt, objective, evaluations, feasible, next_dual) = match config.solver {
        SolverKind::LbfgsB => {
            let mut auglag = config.auglag.clone();
            auglag.inner.fd_threads = config.fd_threads;
            if dual.is_some() {
                if let Some(cap) = config.resume_inner_iterations {
                    auglag.inner.max_iterations = auglag.inner.max_iterations.min(cap);
                }
                if let Some(cap) = config.resume_outer_iterations {
                    auglag.max_outer_iterations = auglag.max_outer_iterations.min(cap);
                }
            }
            let AugLagResult {
                x,
                objective,
                evaluations,
                feasible,
                inequality_multipliers,
                equality_multipliers,
                penalty,
                ..
            } = augmented_lagrangian_warm(&problem, &bounds, &x0, &auglag, dual);
            let next = AugLagWarmStart {
                inequality_multipliers,
                equality_multipliers,
                penalty,
            };
            (x, objective, evaluations, feasible, next)
        }
        SolverKind::ProjGrad => {
            let opts = ProjGradOptions {
                max_iterations: config.auglag.inner.max_iterations,
                fd_threads: config.fd_threads,
                ..ProjGradOptions::default()
            };
            let r = projected_gradient(&ObjOnly(&problem), &bounds, &x0, &opts);
            let next = AugLagWarmStart {
                inequality_multipliers: Vec::new(),
                equality_multipliers: Vec::new(),
                penalty: config.auglag.initial_penalty,
            };
            (r.x, r.objective, r.evaluations, true, next)
        }
        SolverKind::NelderMead => {
            let opts = NelderMeadOptions {
                max_iterations: 40 * dim,
                ..NelderMeadOptions::default()
            };
            let r = nelder_mead(&ObjOnly(&problem), &bounds, &x0, &opts);
            let next = AugLagWarmStart {
                inequality_multipliers: Vec::new(),
                equality_multipliers: Vec::new(),
                penalty: config.auglag.initial_penalty,
            };
            (r.x, r.objective, r.evaluations, true, next)
        }
    };

    let widths = problem.widths_from_x(&x_opt);
    let optimized = problem.model_with(&x_opt);
    let solution = problem
        .pool
        .with(|ws| optimized.solve_with(&problem.solve, ws))?;
    let pressure_drops = optimized.pressure_drops()?;
    // Report the raw Eq. (7) cost, not the normalized solver value.
    let objective = objective * problem.j_scale;
    let next_warm = DesignWarmStart {
        x: x_opt.clone(),
        inequality_multipliers: next_dual.inequality_multipliers,
        equality_multipliers: next_dual.equality_multipliers,
        penalty: next_dual.penalty,
    };
    let outcome = DesignOutcome {
        model: optimized,
        solution,
        widths,
        x_opt,
        pressure_drops,
        objective,
        evaluations,
        feasible,
    };
    Ok((outcome, next_warm))
}

/// Restores pressure feasibility of a warm start without BVP solves.
///
/// A warm start inherited from a neighbouring scenario (e.g. a lower coolant
/// flow) can violate the `ΔP ≤ ΔP_max` caps of the new scenario, and the
/// augmented-Lagrangian method pays dearly to climb back into the feasible
/// region from outside. Pressure drops are closed-form integrals, so
/// feasibility can be checked and repaired for free: bisect the blend
/// `x(α) = (1−α)·x_warm + α·1` toward the uniformly-maximal-width point
/// (the widest, lowest-pressure design) and return the least-blended point
/// whose inequality constraints all hold. Already-feasible warm starts are
/// returned unchanged; if even `x(1)` is infeasible (`ΔP_max` unattainable),
/// the blend falls back to the anchor and the solver reports infeasibility
/// as it would from a cold start.
fn feasible_warm_start(problem: &WidthProblem<'_>, start: &[f64]) -> Vec<f64> {
    let feasible = |x: &[f64]| problem.inequality(x).iter().all(|&g| g <= 0.0);
    let blend = |alpha: f64| -> Vec<f64> { start.iter().map(|&s| s + alpha * (1.0 - s)).collect() };
    if feasible(start) {
        return start.to_vec();
    }
    let mut lo = 0.0; // infeasible
    let mut hi = 1.0; // feasible (or best effort)
    if !feasible(&blend(hi)) {
        return blend(hi);
    }
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        if feasible(&blend(mid)) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    blend(hi)
}

/// Adapter presenting only the objective of a [`ConstrainedObjective`] to
/// the unconstrained solvers (ablation paths).
struct ObjOnly<'a>(&'a WidthProblem<'a>);

impl liquamod_optimal_control::Objective for ObjOnly<'_> {
    fn dim(&self) -> usize {
        ConstrainedObjective::dim(self.0)
    }
    fn value(&self, x: &[f64]) -> f64 {
        self.0.objective(x)
    }
}

/// The paper's §IV-B dual formulation: minimize the pumping effort with an
/// upper bound on the thermal cost. ("Note that the optimal design problem
/// can alternatively be stated as minimizing the pumping effort, with an
/// upper bound for the temperature gradient.")
///
/// The objective is the mean per-channel pressure drop normalized by
/// `ΔP_max`; constraints are `J(x) ≤ cost_bound` (thermal) plus the usual
/// `ΔPᵢ ≤ ΔP_max` and optional equal-pressure coupling.
///
/// # Errors
///
/// Same as [`optimize`]; additionally rejects a non-positive `cost_bound`.
pub fn optimize_min_pumping(
    model: &Model,
    config: &OptimizationConfig,
    cost_bound: f64,
) -> Result<DesignOutcome> {
    config.validate()?;
    if !(cost_bound.is_finite() && cost_bound > 0.0) {
        return Err(CoreError::InvalidConfig {
            what: format!("cost_bound must be positive, got {cost_bound}"),
        });
    }
    let params = model.params();
    let mut thermal = WidthProblem {
        base: model,
        config,
        n_cols: model.columns().len(),
        w_min: params.w_min.si(),
        w_max: params.w_max.si(),
        dp_max: params.dp_max.si(),
        solve: SolveOptions::with_mesh_intervals(config.mesh_intervals),
        j_scale: 1.0,
        pool: WorkspacePool::new(),
    };
    let dim = ConstrainedObjective::dim(&thermal);
    let bounds = Bounds::uniform(dim, 0.0, 1.0)?;
    let x0 = vec![1.0; dim];
    let j0 = thermal.raw_objective(&x0);
    if !(j0.is_finite() && j0 > 0.0) {
        return Err(CoreError::InvalidConfig {
            what: format!("cost at the starting point is unusable ({j0})"),
        });
    }
    thermal.j_scale = j0;

    struct MinPumping<'a> {
        inner: &'a WidthProblem<'a>,
        cost_bound: f64,
    }
    impl ConstrainedObjective for MinPumping<'_> {
        fn dim(&self) -> usize {
            ConstrainedObjective::dim(self.inner)
        }
        fn objective(&self, x: &[f64]) -> f64 {
            let drops = self.inner.pressure_drops(x);
            drops.iter().sum::<f64>() / drops.len() as f64 / self.inner.dp_max
        }
        fn inequality(&self, x: &[f64]) -> Vec<f64> {
            // Thermal bound first, then the per-column pressure caps.
            let mut g = vec![self.inner.raw_objective(x) / self.cost_bound - 1.0];
            g.extend(self.inner.inequality(x));
            g
        }
        fn equality(&self, x: &[f64]) -> Vec<f64> {
            self.inner.equality(x)
        }
    }

    let dual = MinPumping {
        inner: &thermal,
        cost_bound,
    };
    let mut auglag = config.auglag.clone();
    auglag.inner.fd_threads = config.fd_threads;
    let AugLagResult {
        x,
        evaluations,
        feasible,
        ..
    } = augmented_lagrangian(&dual, &bounds, &x0, &auglag);

    let widths = thermal.widths_from_x(&x);
    let optimized = thermal.model_with(&x);
    let solution = thermal
        .pool
        .with(|ws| optimized.solve_with(&thermal.solve, ws))?;
    let pressure_drops = optimized.pressure_drops()?;
    let objective = match config.objective {
        ObjectiveKind::GradientSquared => solution.cost_gradient_squared(),
        ObjectiveKind::HeatflowSquared => solution.cost_heatflow_squared(),
    };
    Ok(DesignOutcome {
        model: optimized,
        solution,
        widths,
        x_opt: x,
        pressure_drops,
        objective,
        evaluations,
        feasible,
    })
}

/// Convenience used by comparisons and benches: solve `model` with every
/// column forced to one uniform width, reusing `ws` for the solve buffers.
///
/// # Errors
///
/// Propagates model solve errors.
pub(crate) fn solve_uniform(
    model: &Model,
    width: Length,
    mesh_intervals: usize,
    ws: &mut SolveWorkspace,
) -> Result<(Model, Solution)> {
    let mut m = model.clone();
    for c in 0..m.columns().len() {
        m.set_width_profile(c, WidthProfile::uniform(width))?;
    }
    let solution = m.solve_with(&SolveOptions::with_mesh_intervals(mesh_intervals), ws)?;
    Ok((m, solution))
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquamod_thermal_model::{ChannelColumn, HeatProfile, ModelParams};
    use liquamod_units::LinearHeatFlux;

    fn strip(params: &ModelParams) -> Model {
        let col = ChannelColumn::new(WidthProfile::uniform(params.w_max))
            .with_heat_top(HeatProfile::uniform(LinearHeatFlux::from_w_per_m(50.0)))
            .with_heat_bottom(HeatProfile::uniform(LinearHeatFlux::from_w_per_m(50.0)));
        Model::new(params.clone(), Length::from_centimeters(1.0), vec![col]).unwrap()
    }

    #[test]
    fn config_validation() {
        let model = strip(&ModelParams::date2012());
        let bad = OptimizationConfig {
            segments: 0,
            ..OptimizationConfig::fast()
        };
        assert!(matches!(
            optimize(&model, &bad),
            Err(CoreError::InvalidConfig { .. })
        ));
        let bad = OptimizationConfig {
            mesh_intervals: 0,
            ..OptimizationConfig::fast()
        };
        assert!(matches!(
            optimize(&model, &bad),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn width_mapping_roundtrip() {
        let params = ModelParams::date2012();
        let model = strip(&params);
        let config = OptimizationConfig {
            segments: 4,
            ..OptimizationConfig::fast()
        };
        let problem = WidthProblem {
            base: &model,
            config: &config,
            n_cols: 1,
            w_min: params.w_min.si(),
            w_max: params.w_max.si(),
            dp_max: params.dp_max.si(),
            solve: SolveOptions::with_mesh_intervals(64),
            j_scale: 1.0,
            pool: WorkspacePool::new(),
        };
        let widths = problem.widths_from_x(&[0.0, 1.0, 0.5, 2.0]);
        match &widths[0] {
            WidthProfile::PiecewiseConstant { widths } => {
                assert!((widths[0].as_micrometers() - 10.0).abs() < 1e-9);
                assert!((widths[1].as_micrometers() - 50.0).abs() < 1e-9);
                assert!((widths[2].as_micrometers() - 30.0).abs() < 1e-9);
                // Far out-of-box inputs clamp to the FD guard band
                // (t = 1.1 → 54 µm), still safely inside the pitch.
                assert!((widths[3].as_micrometers() - 54.0).abs() < 1e-9);
            }
            other => panic!("expected piecewise profile, got {other:?}"),
        }
    }

    #[test]
    fn pressure_constraints_signal_violations() {
        let params = ModelParams::date2012();
        let model = strip(&params);
        let config = OptimizationConfig {
            segments: 2,
            ..OptimizationConfig::fast()
        };
        let problem = WidthProblem {
            base: &model,
            config: &config,
            n_cols: 1,
            w_min: params.w_min.si(),
            w_max: params.w_max.si(),
            dp_max: params.dp_max.si(),
            solve: SolveOptions::with_mesh_intervals(64),
            j_scale: 1.0,
            pool: WorkspacePool::new(),
        };
        // All-minimum widths exceed ΔP_max at the calibrated flow → g > 0.
        let g_min = problem.inequality(&[0.0, 0.0]);
        assert!(g_min[0] > 0.0, "min width should violate: g = {}", g_min[0]);
        // All-maximum widths sit well below ΔP_max → g < 0.
        let g_max = problem.inequality(&[1.0, 1.0]);
        assert!(g_max[0] < 0.0, "max width should satisfy: g = {}", g_max[0]);
    }

    #[test]
    fn equality_constraints_only_with_multiple_columns() {
        let params = ModelParams::date2012();
        let model = strip(&params);
        let config = OptimizationConfig::fast();
        let problem = WidthProblem {
            base: &model,
            config: &config,
            n_cols: 1,
            w_min: params.w_min.si(),
            w_max: params.w_max.si(),
            dp_max: params.dp_max.si(),
            solve: SolveOptions::with_mesh_intervals(64),
            j_scale: 1.0,
            pool: WorkspacePool::new(),
        };
        assert!(problem.equality(&vec![1.0; config.segments]).is_empty());
    }

    #[test]
    fn min_pumping_dual_meets_thermal_bound_at_lower_pressure() {
        // §IV-B dual: minimize pumping with a bound on the thermal cost.
        // The bound is set between the uniform-max cost and the primal
        // optimum, so the dual must spend *some* pressure — but less than
        // the gradient-optimal design does.
        let params = ModelParams::date2012();
        let model = strip(&params);
        let config = OptimizationConfig::fast();
        let primal = optimize(&model, &config).unwrap();
        let (_, uniform) = solve_uniform(
            &model,
            params.w_max,
            config.mesh_intervals,
            &mut SolveWorkspace::new(),
        )
        .unwrap();
        let j_uniform = uniform.cost_gradient_squared();
        let bound = 0.5 * (primal.objective + j_uniform);
        let dual = optimize_min_pumping(&model, &config, bound).unwrap();

        // Thermal bound honored (within the solver's constraint tolerance).
        assert!(
            dual.objective <= bound * 1.05,
            "thermal cost {} exceeds bound {}",
            dual.objective,
            bound
        );
        // And the relaxed target is bought with less pressure than the
        // primal optimum needed.
        let max_dp = |drops: &[Pressure]| drops.iter().map(|p| p.as_pascals()).fold(0.0, f64::max);
        assert!(
            max_dp(&dual.pressure_drops) < max_dp(&primal.pressure_drops),
            "dual dp {} should undercut primal dp {}",
            max_dp(&dual.pressure_drops),
            max_dp(&primal.pressure_drops)
        );
        // Rejects nonsense bounds.
        assert!(optimize_min_pumping(&model, &config, 0.0).is_err());
        assert!(optimize_min_pumping(&model, &config, f64::NAN).is_err());
    }

    #[test]
    fn optimize_strip_reduces_cost_and_meets_pressure() {
        let params = ModelParams::date2012();
        let model = strip(&params);
        let config = OptimizationConfig::fast();
        let outcome = optimize(&model, &config).unwrap();
        // The optimum must beat the uniform-max starting point…
        let (_, uniform) = solve_uniform(
            &model,
            params.w_max,
            config.mesh_intervals,
            &mut SolveWorkspace::new(),
        )
        .unwrap();
        assert!(
            outcome.solution.thermal_gradient().as_kelvin()
                < uniform.thermal_gradient().as_kelvin(),
            "optimal {} K vs uniform {} K",
            outcome.solution.thermal_gradient().as_kelvin(),
            uniform.thermal_gradient().as_kelvin()
        );
        // …and stay inside the pressure budget.
        assert!(outcome.feasible);
        for dp in &outcome.pressure_drops {
            assert!(
                dp.as_pascals() <= params.dp_max.as_pascals() * 1.01,
                "dp = {dp}"
            );
        }
        // The optimal profile narrows toward the outlet (paper Fig. 6a).
        match &outcome.widths[0] {
            WidthProfile::PiecewiseConstant { widths } => {
                assert!(
                    widths.last().unwrap().si() < widths.first().unwrap().si(),
                    "outlet should be narrower than inlet: {widths:?}"
                );
            }
            other => panic!("expected piecewise profile, got {other:?}"),
        }
        assert!(outcome.evaluations > 0);
    }
}
