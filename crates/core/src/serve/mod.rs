//! `liquamod::serve` — the streaming modulation service.
//!
//! The batch subsystems answer "given this whole workload trace, what are
//! the best channel widths?" This module answers the *operational* form of
//! the same question: workload phases arrive one at a time, from many
//! stacks at once, and each wants its width decision back while the pump
//! budget they share keeps being re-split underneath them.
//!
//! Data flow of one [`ServePool`]:
//!
//! ```text
//!   client                        pool                        workers
//!   ──────                       ──────                       ───────
//!   open(arch) ───────────────▶ admit session ──▶ PumpBudget revalidation
//!   submit(phase) ────────────▶ session queue        (clamp + degrade
//!                                                     when infeasible)
//!   drain_batch() ────────────▶ allocate(policy, budget, gradients)
//!                               one task per ready session ──▶ parallel_map
//!                                 with_flow_scale(share)        (bitwise ==
//!                                 run_resumed(trace, resume)     serial)
//!   ◀─ WidthDecision stream ─── fold results back, id order
//!   ◀─ DegradedEvent stream ─── evictions, clamps, run events
//!   snapshot(id) ─────────────▶ SessionSnapshot::to_golden_json
//!                               (bitwise across a process restart)
//! ```
//!
//! Correctness is anchored to the batch path, not re-derived: a phase
//! streamed through a session is served by the exact
//! [`ModulationController::run_resumed`] chain the fleet layer uses, so
//! [`verify_streaming_identity`] can demand the streamed trajectory equal
//! the one-shot [`ModulationController::run`] **bitwise**, and
//! [`verify_snapshot_restore`] can demand a session serialized mid-stream
//! ([`SessionSnapshot::to_golden_json`], golden-fixture numeric format)
//! continue after a restart as if never interrupted. [`run_soak`] drives a
//! pool through the full service lifecycle — staggered arrivals into an
//! under-provisioned budget, incremental submission, snapshot/restore
//! churn, departures — and [`soak_outcomes_match`] gates that the whole
//! thing is deterministic under parallel fan-out.
//!
//! [`ModulationController::run`]: crate::transient::ModulationController::run
//! [`ModulationController::run_resumed`]: crate::transient::ModulationController::run_resumed

/// Service metrics, re-exported from the shared observability layer
/// ([`crate::obs`]) where [`LatencyHistogram`]/[`SessionMetrics`]/
/// [`PoolMetrics`] now live — existing `serve::metrics` call sites and
/// tests compile unchanged.
pub mod metrics {
    pub use crate::obs::{LatencyHistogram, PoolMetrics, SessionMetrics};
}
mod pool;
mod session;
mod soak;

pub use metrics::{LatencyHistogram, PoolMetrics, SessionMetrics};
pub use pool::{ServeBatch, ServeOptions, ServePool, WidthDecision};
pub use session::SessionSnapshot;
pub use soak::{
    run_soak, soak_level, soak_outcomes_match, verify_snapshot_restore, verify_streaming_identity,
    SnapshotFidelity, SoakOutcome, SoakPlan, StreamingIdentity,
};
