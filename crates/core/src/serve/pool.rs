//! The serve pool: multiplexing concurrent streaming modulation sessions
//! over the sweep engine's worker pool, under one shared pump budget.
//!
//! A [`ServePool`] admits stacks ([`ServePool::open`]), accepts their
//! workload phases incrementally ([`ServePool::submit`] /
//! [`ServePool::submit_level`]) and serves one queued phase per ready
//! session per [`ServePool::drain_batch`], fanning the segment runs across
//! worker threads with the same deterministic scheduler the batch sweeps
//! use — so a drained batch produces **bitwise** the same width decisions
//! at any worker count. Between batches the shared [`PumpBudget`] is split
//! across the *live* sessions by the configured [`BudgetPolicy`], and every
//! arrival or departure re-validates the provisioned budget against the new
//! fleet size, degrading (never dying) through
//! [`PumpBudget::clamped_feasible`] when the live set is too small or too
//! large for the valve band.

use std::collections::BTreeMap;
use std::time::Instant;

use liquamod_floorplan::PowerLevel;

use crate::faults::{DegradedEvent, DegradedKind};
use crate::fleet::{
    allocate, allocate_with, BudgetPolicy, PredictiveContext, PumpBudget, SurrogateModel,
};
use crate::mpsoc::{arch_trace, ArchSpec, MpsocConfig, MpsocModulated, MpsocTrace};
use crate::obs;
use crate::serve::metrics::{PoolMetrics, SessionMetrics};
use crate::serve::session::{ServeSession, SessionSnapshot};
use crate::sweep::{catch_unit, parallel_map};
use crate::transient::{ModulationPolicy, ResumeState, TransientOutcome};
use crate::{CoreError, Result};

/// Configuration of a [`ServePool`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The per-stack base configuration (its flow rate is the 1.0 point of
    /// the flow-scale axis; every session runs this config rescaled by its
    /// allocated share).
    pub config: MpsocConfig,
    /// The modulation policy every session's controller applies. For the
    /// streaming path to be bitwise-identical to a one-shot run the epoch
    /// cadence must align with the submitted phase lengths (e.g. a
    /// fixed cadence whose `epoch_steps` divides the steps per phase).
    pub policy: ModulationPolicy,
    /// How the shared budget splits across live sessions between batches.
    pub budget_policy: BudgetPolicy,
    /// Average provisioned flow scale per planned session.
    pub avg_scale: f64,
    /// Sessions the pump was provisioned for: the budget is
    /// [`PumpBudget::per_stack`]`(avg_scale, planned_capacity)` and stays
    /// fixed for the pool's lifetime — the live set grows and shrinks
    /// around it.
    pub planned_capacity: usize,
    /// Worker threads for batch fan-out (1 = serial).
    pub workers: usize,
}

impl ServeOptions {
    /// The single-session identity configuration: capacity 1 at average
    /// scale 1.0 under uniform allocation, serial execution — every
    /// decision runs at exactly the base config's flow, which is what the
    /// streaming-vs-one-shot identity gate requires.
    #[must_use]
    pub fn single(config: MpsocConfig, policy: ModulationPolicy) -> Self {
        Self {
            config,
            policy,
            budget_policy: BudgetPolicy::Uniform,
            avg_scale: 1.0,
            planned_capacity: 1,
            workers: 1,
        }
    }

    fn validate(&self) -> Result<()> {
        self.config.validate()?;
        if self.planned_capacity == 0 {
            return Err(CoreError::InvalidConfig {
                what: "planned_capacity must be ≥ 1".into(),
            });
        }
        if !(self.avg_scale.is_finite() && self.avg_scale > 0.0) {
            return Err(CoreError::InvalidConfig {
                what: format!(
                    "avg_scale must be positive and finite, got {}",
                    self.avg_scale
                ),
            });
        }
        Ok(())
    }
}

/// One width decision served to a session: the outcome of running one
/// submitted phase through the session's modulation controller.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthDecision {
    /// The session served.
    pub session_id: u64,
    /// The session's architecture.
    pub arch: ArchSpec,
    /// Zero-based index of the phase within the session's stream.
    pub segment: usize,
    /// Session clock at the end of the served phase, seconds.
    pub time_seconds: f64,
    /// The flow share the allocator granted for this segment.
    pub flow_scale: f64,
    /// Time-peak inter-layer gradient over the segment, kelvin.
    pub peak_gradient_k: f64,
    /// Time-peak silicon temperature over the segment, kelvin.
    pub peak_temperature_k: f64,
    /// Narrowest channel width in the adopted design, µm.
    pub min_width_um: f64,
    /// Widest channel width in the adopted design, µm.
    pub max_width_um: f64,
    /// Modulation epochs adopted during the segment.
    pub epochs_adopted: usize,
    /// Optimizer objective evaluations spent on the segment.
    pub evaluations: usize,
    /// The full transient record of the segment (snapshot timestamps are
    /// segment-local, per the [`ModulationController::run_resumed`]
    /// contract).
    ///
    /// [`ModulationController::run_resumed`]: crate::transient::ModulationController::run_resumed
    pub outcome: TransientOutcome,
}

/// Everything one [`ServePool::drain_batch`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBatch {
    /// Zero-based batch index (only batches that served work count).
    pub index: u64,
    /// One decision per served session, in session-id order.
    pub decisions: Vec<WidthDecision>,
    /// Degraded-mode events surfaced during the batch, in session-id order.
    pub events: Vec<DegradedEvent>,
    /// Wall-clock duration of the batch (measurement only — excluded from
    /// every determinism gate).
    pub wall_seconds: f64,
}

/// The per-width-decision extremes of a resume state's adopted design, µm.
fn width_band_um(resume: &ResumeState) -> (f64, f64) {
    let mut min_um = f64::INFINITY;
    let mut max_um = f64::NEG_INFINITY;
    for profile in resume.widths.iter().flatten() {
        min_um = min_um.min(profile.min_width().si() * 1e6);
        max_um = max_um.max(profile.max_width().si() * 1e6);
    }
    if min_um.is_finite() && max_um.is_finite() {
        (min_um, max_um)
    } else {
        (0.0, 0.0)
    }
}

/// A long-running modulation service: concurrent streaming sessions over
/// one shared pump. See the [module docs](crate::serve) for the data flow.
#[derive(Debug)]
pub struct ServePool {
    options: ServeOptions,
    /// The provisioned budget (fixed at construction).
    budget: PumpBudget,
    /// The budget the allocator actually runs against: the provisioned one,
    /// or its [`PumpBudget::clamped_feasible`] relaxation when the live
    /// session count left the feasible band.
    effective: PumpBudget,
    sessions: BTreeMap<u64, ServeSession>,
    next_id: u64,
    metrics: PoolMetrics,
    events: Vec<DegradedEvent>,
}

impl ServePool {
    /// Builds an empty pool, provisioning the shared budget for
    /// `planned_capacity` sessions at `avg_scale` each.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an invalid base configuration,
    /// a zero capacity or a non-positive average scale.
    pub fn new(options: ServeOptions) -> Result<Self> {
        options.validate()?;
        let budget = PumpBudget::per_stack(options.avg_scale, options.planned_capacity);
        budget.validate(options.planned_capacity)?;
        Ok(Self {
            options,
            budget,
            effective: budget,
            sessions: BTreeMap::new(),
            next_id: 0,
            metrics: PoolMetrics::default(),
            events: Vec::new(),
        })
    }

    /// The pool configuration.
    #[must_use]
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// The provisioned budget.
    #[must_use]
    pub fn budget(&self) -> &PumpBudget {
        &self.budget
    }

    /// The budget currently in force (clamped when the live session count
    /// is outside the provisioned band).
    #[must_use]
    pub fn effective_budget(&self) -> &PumpBudget {
        &self.effective
    }

    /// Pool-wide metrics.
    #[must_use]
    pub fn metrics(&self) -> &PoolMetrics {
        &self.metrics
    }

    /// Every degraded-mode event the pool has recorded, in order.
    #[must_use]
    pub fn events(&self) -> &[DegradedEvent] {
        &self.events
    }

    /// Number of live sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no session is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Live session ids, ascending.
    #[must_use]
    pub fn session_ids(&self) -> Vec<u64> {
        self.sessions.keys().copied().collect()
    }

    /// Queued (not yet served) phases of one session.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unknown session.
    pub fn queue_depth(&self, id: u64) -> Result<usize> {
        Ok(self.session(id)?.queued_len())
    }

    /// Total queued phases across all sessions.
    #[must_use]
    pub fn pending_total(&self) -> usize {
        self.sessions.values().map(ServeSession::queued_len).sum()
    }

    /// One session's metrics.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unknown session.
    pub fn session_metrics(&self, id: u64) -> Result<&SessionMetrics> {
        Ok(self.session(id)?.metrics())
    }

    fn session(&self, id: u64) -> Result<&ServeSession> {
        self.sessions
            .get(&id)
            .ok_or_else(|| CoreError::InvalidConfig {
                what: format!("unknown session {id}"),
            })
    }

    /// The pool's served horizon: the latest session clock, the timestamp
    /// lifecycle events are stamped with.
    fn horizon_seconds(&self) -> f64 {
        self.sessions
            .values()
            .map(ServeSession::clock_seconds)
            .fold(0.0, f64::max)
    }

    /// Re-checks the provisioned budget against the live session count and
    /// swaps in the clamped band (recording a [`DegradedKind::BudgetClamped`]
    /// event) when it is infeasible — arrivals and departures degrade the
    /// allocation, they never kill the service.
    fn revalidate_budget(&mut self) -> Result<()> {
        let n = self.sessions.len();
        if n == 0 {
            self.effective = self.budget;
            return Ok(());
        }
        match self
            .budget
            .validate_at(n, Some(self.metrics.batches as usize))
        {
            Ok(()) => {
                self.effective = self.budget;
                Ok(())
            }
            Err(CoreError::BudgetInfeasible { .. }) => {
                self.effective = self.budget.clamped_feasible(n);
                let event = DegradedEvent {
                    kind: DegradedKind::BudgetClamped,
                    segment: Some(self.metrics.batches as usize),
                    stack: None,
                    time_seconds: self.horizon_seconds(),
                    detail: format!(
                        "budget provisioned for {} sessions clamped to serve {n} live \
                         (band [{}, {}] → [{}, {}] flow-scale units)",
                        self.options.planned_capacity,
                        self.budget.min_scale,
                        self.budget.max_scale,
                        self.effective.min_scale,
                        self.effective.max_scale,
                    ),
                };
                obs::event(event.kind.label(), event.detail.clone());
                self.events.push(event);
                self.metrics.degraded_events += 1;
                Ok(())
            }
            Err(other) => Err(other),
        }
    }

    /// Admits a new session on `arch`, re-validating the shared budget for
    /// the grown fleet. Over-subscribing past `planned_capacity` is allowed
    /// and degrades through the clamped band.
    ///
    /// # Errors
    ///
    /// Propagates budget-configuration errors (never mere infeasibility —
    /// that degrades instead).
    pub fn open(&mut self, arch: ArchSpec) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.sessions.insert(id, ServeSession::new(id, arch));
        self.metrics.sessions_opened += 1;
        self.revalidate_budget()?;
        Ok(id)
    }

    /// Restores a session from a snapshot (same id, same trajectory),
    /// re-validating the budget like [`ServePool::open`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when the snapshot's id is already live.
    pub fn restore(&mut self, snapshot: &SessionSnapshot) -> Result<u64> {
        let id = snapshot.session_id;
        if self.sessions.contains_key(&id) {
            return Err(CoreError::InvalidConfig {
                what: format!("session {id} is already live; cannot restore over it"),
            });
        }
        self.sessions
            .insert(id, ServeSession::from_snapshot(snapshot));
        self.next_id = self.next_id.max(id + 1);
        self.metrics.sessions_opened += 1;
        self.revalidate_budget()?;
        Ok(id)
    }

    /// Departs a session, returning its final snapshot (resumable later via
    /// [`ServePool::restore`]) and re-validating the budget for the shrunk
    /// fleet. Queued phases the session never served are dropped.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unknown session.
    pub fn close(&mut self, id: u64) -> Result<SessionSnapshot> {
        let session = self
            .sessions
            .remove(&id)
            .ok_or_else(|| CoreError::InvalidConfig {
                what: format!("unknown session {id}"),
            })?;
        self.metrics.sessions_closed += 1;
        self.revalidate_budget()?;
        Ok(session.snapshot())
    }

    /// The restartable state of a live session right now.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unknown session.
    pub fn snapshot(&self, id: u64) -> Result<SessionSnapshot> {
        Ok(self.session(id)?.snapshot())
    }

    /// Queues one workload trace (usually a single phase) for a session.
    /// Served in submission order, one trace per batch.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unknown session or a trace whose
    /// load grids do not match the pool's `nx × nz` configuration.
    pub fn submit(&mut self, id: u64, trace: MpsocTrace) -> Result<()> {
        let expected = (self.options.config.nx, self.options.config.nz);
        for phase in trace.phases() {
            let dims = phase.load.dims();
            if dims != expected {
                return Err(CoreError::InvalidConfig {
                    what: format!(
                        "phase '{}' load grid {}x{} does not match the pool's {}x{}",
                        phase.label, dims.0, dims.1, expected.0, expected.1
                    ),
                });
            }
        }
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or_else(|| CoreError::InvalidConfig {
                what: format!("unknown session {id}"),
            })?;
        session.enqueue(trace);
        Ok(())
    }

    /// [`ServePool::submit`] for the common streaming client: rasterizes
    /// one `duration_seconds`-long phase of the session's architecture at
    /// `level` and queues it.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unknown session; trace
    /// construction errors for a non-positive duration.
    pub fn submit_level(
        &mut self,
        id: u64,
        level: PowerLevel,
        duration_seconds: f64,
    ) -> Result<()> {
        if !(duration_seconds.is_finite() && duration_seconds > 0.0) {
            return Err(CoreError::InvalidConfig {
                what: format!("phase duration must be positive, got {duration_seconds}"),
            });
        }
        let arch = self.session(id)?.arch();
        let trace = arch_trace(
            &arch.architecture(),
            &[level],
            duration_seconds,
            self.options.config.nx,
            self.options.config.nz,
        );
        self.submit(id, trace)
    }

    /// Serves one queued phase of every ready session: allocates the
    /// effective budget across the live sessions (gradient feedback from
    /// each session's last decision), fans the segment runs across the
    /// worker pool, and folds the results back into the sessions in id
    /// order — bitwise identical at any worker count.
    ///
    /// A session whose run *fails* (optimizer, model or panic payload) is
    /// evicted with a [`DegradedKind::SessionEvicted`] event rather than
    /// poisoning the batch; the other sessions' decisions still land.
    ///
    /// # Errors
    ///
    /// Allocation errors (non-finite gradient feedback, degenerate budget
    /// bounds) — the per-session run errors degrade instead.
    pub fn drain_batch(&mut self) -> Result<ServeBatch> {
        let index = self.metrics.batches;
        struct BatchTask {
            id: u64,
            arch: ArchSpec,
            label: String,
            trace: MpsocTrace,
            share: f64,
            resume: Option<ResumeState>,
            segment: usize,
        }

        let live: Vec<u64> = self.sessions.keys().copied().collect();
        let gradients: Vec<f64> = live
            .iter()
            .map(|id| self.sessions[id].last_gradient_k())
            .collect();
        let ready: Vec<u64> = live
            .iter()
            .copied()
            .filter(|id| self.sessions[id].queued_len() > 0)
            .collect();
        if ready.is_empty() {
            return Ok(ServeBatch {
                index,
                decisions: Vec::new(),
                events: Vec::new(),
                wall_seconds: 0.0,
            });
        }
        let _batch_span = obs::span("serve.batch");
        let shares = if self.options.budget_policy == BudgetPolicy::Predictive {
            // Predictive serving: the lookahead is *partial* — only the
            // submitted-but-undrained front of each session's queue is
            // known — and the per-session surrogates (refit from every
            // served decision, carried through snapshot/restore) supply
            // the trace-unknown half.
            let last_shares: Vec<f64> = live
                .iter()
                .map(|id| self.sessions[id].predictor().last_share)
                .collect();
            let ratios: Vec<f64> = live
                .iter()
                .map(|id| self.sessions[id].forecast_power_ratio())
                .collect();
            let surrogate = SurrogateModel::from_stacks(
                live.iter()
                    .map(|id| *self.sessions[id].predictor())
                    .collect(),
            );
            let ctx = PredictiveContext {
                last_shares: &last_shares,
                forecast_ratio: Some(&ratios),
                surrogate: &surrogate,
            };
            allocate_with(
                self.options.budget_policy,
                &self.effective,
                &gradients,
                Some(&ctx),
            )?
        } else {
            allocate(self.options.budget_policy, &self.effective, &gradients)?
        };
        let share_of: BTreeMap<u64, f64> = live.iter().copied().zip(shares).collect();

        let started = Instant::now();
        let mut tasks: Vec<BatchTask> = Vec::with_capacity(ready.len());
        for id in ready {
            let session = self.sessions.get_mut(&id).expect("ready session is live");
            let trace = session
                .pop_trace()
                .expect("ready session has a queued trace");
            tasks.push(BatchTask {
                id,
                arch: session.arch(),
                label: format!("{} segment {}", session.label(), session.segments_done()),
                trace,
                share: share_of[&id],
                resume: session.resume().cloned(),
                segment: session.segments_done(),
            });
        }

        let base_config = self.options.config.clone();
        let policy = self.options.policy;
        let run_one = |task: &BatchTask| -> Result<(TransientOutcome, ResumeState, f64)> {
            let _span = obs::lane_span("serve.decision", task.id as u32);
            obs::add("serve.decisions", 1);
            let config = base_config.with_flow_scale(task.share)?;
            let modulated = MpsocModulated::for_arch(&task.arch.architecture(), config)?;
            let controller = modulated.controller(policy)?;
            let t0 = Instant::now();
            let (outcome, resume) = controller.run_resumed(&task.trace, task.resume.clone())?;
            Ok((outcome, resume, t0.elapsed().as_secs_f64()))
        };
        let task_label = |task: &BatchTask| task.label.clone();

        let workers = self.options.workers.max(1);
        let results: Vec<Result<(TransientOutcome, ResumeState, f64)>> = if workers == 1 {
            tasks
                .iter()
                .map(|t| catch_unit(t, &task_label, &run_one))
                .collect::<Result<Vec<_>>>()?
        } else {
            parallel_map(&tasks, workers, task_label, run_one)?
        };

        let mut decisions = Vec::with_capacity(tasks.len());
        let mut events = Vec::new();
        let mut departed = false;
        for (task, result) in tasks.into_iter().zip(results) {
            match result {
                Ok((outcome, resume, latency_seconds)) => {
                    let duration = task.trace.total_duration_seconds();
                    let (min_width_um, max_width_um) = width_band_um(&resume);
                    let epochs = outcome.epochs.len();
                    let evaluations = outcome.total_evaluations();
                    let degraded = outcome.degraded.len();
                    let gradient_k = outcome.peak_gradient_k();
                    // The served segment's closing power: the denominator
                    // of the session's next forecast ratio.
                    let power_w = task
                        .trace
                        .phases()
                        .last()
                        .map_or(0.0, |p| p.load.total_power().as_watts());
                    for run_event in &outcome.degraded {
                        let mut event = run_event.clone();
                        event.segment = Some(task.segment);
                        event.stack = Some(task.id as usize);
                        events.push(event);
                    }
                    let session = self.sessions.get_mut(&task.id).expect("session is live");
                    let decision = WidthDecision {
                        session_id: task.id,
                        arch: session.arch(),
                        segment: task.segment,
                        time_seconds: session.clock_seconds() + duration,
                        flow_scale: task.share,
                        peak_gradient_k: outcome.peak_gradient_k(),
                        peak_temperature_k: outcome.peak_temperature_k(),
                        min_width_um,
                        max_width_um,
                        epochs_adopted: outcome.epochs_adopted(),
                        evaluations,
                        outcome,
                    };
                    session.apply_decision(
                        resume,
                        duration,
                        latency_seconds,
                        epochs,
                        evaluations,
                        degraded,
                    );
                    if self.options.budget_policy == BudgetPolicy::Predictive {
                        session.observe_prediction(task.share, gradient_k, power_w);
                    }
                    self.metrics.latency.record(latency_seconds);
                    self.metrics.decisions += 1;
                    self.metrics.epochs += epochs as u64;
                    self.metrics.evaluations += evaluations as u64;
                    self.metrics.degraded_events += degraded as u64;
                    decisions.push(decision);
                }
                Err(error) => {
                    let clock = self
                        .sessions
                        .get(&task.id)
                        .map_or(0.0, ServeSession::clock_seconds);
                    self.sessions.remove(&task.id);
                    self.metrics.sessions_failed += 1;
                    self.metrics.degraded_events += 1;
                    let event = DegradedEvent {
                        kind: DegradedKind::SessionEvicted,
                        segment: Some(task.segment),
                        stack: Some(task.id as usize),
                        time_seconds: clock,
                        detail: format!("segment run failed, session evicted: {error}"),
                    };
                    obs::event(event.kind.label(), event.detail.clone());
                    events.push(event);
                    departed = true;
                }
            }
        }
        if departed {
            self.revalidate_budget()?;
        }
        self.metrics.batches += 1;
        self.events.extend(events.iter().cloned());
        Ok(ServeBatch {
            index,
            decisions,
            events,
            wall_seconds: started.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::ModulationPolicy;

    fn tiny_options() -> ServeOptions {
        let mut config = MpsocConfig::fast();
        config.nz = 11;
        config.n_groups = 2;
        ServeOptions {
            config,
            policy: ModulationPolicy::every(8),
            budget_policy: BudgetPolicy::Uniform,
            avg_scale: 1.0,
            planned_capacity: 4,
            workers: 1,
        }
    }

    #[test]
    fn invalid_options_are_rejected() {
        let mut o = tiny_options();
        o.planned_capacity = 0;
        assert!(ServePool::new(o).is_err());
        let mut o = tiny_options();
        o.avg_scale = -1.0;
        assert!(ServePool::new(o).is_err());
    }

    #[test]
    fn lifecycle_errors_are_typed() {
        let mut pool = ServePool::new(tiny_options()).unwrap();
        assert!(pool.close(0).is_err());
        assert!(pool.snapshot(0).is_err());
        assert!(pool.queue_depth(0).is_err());
        assert!(pool.submit_level(0, PowerLevel::Average, 0.032).is_err());
        let id = pool.open(ArchSpec::Arch1).unwrap();
        assert!(pool.submit_level(id, PowerLevel::Average, -1.0).is_err());
        let snap = pool.snapshot(id).unwrap();
        assert!(pool.restore(&snap).is_err(), "id still live");
    }

    #[test]
    fn undersubscribed_pool_clamps_the_budget_and_degrades() {
        // Provisioned for 4 sessions; one live session can draw at most
        // 1.5× average — less than the 4× total — so validate_at fails
        // high-side and the band must relax.
        let mut pool = ServePool::new(tiny_options()).unwrap();
        let id = pool.open(ArchSpec::Arch1).unwrap();
        assert_eq!(pool.len(), 1);
        assert!(!pool.events().is_empty(), "clamp must be surfaced");
        assert!(pool
            .events()
            .iter()
            .all(|e| e.kind == DegradedKind::BudgetClamped));
        assert!(pool.effective_budget().max_scale >= 4.0);
        assert_eq!(pool.metrics().degraded_events, pool.events().len() as u64);
        // Closing the only session restores the provisioned band.
        pool.close(id).unwrap();
        assert_eq!(pool.effective_budget(), pool.budget());
    }

    #[test]
    fn fully_subscribed_pool_keeps_the_provisioned_band() {
        let mut pool = ServePool::new(tiny_options()).unwrap();
        for _ in 0..4 {
            pool.open(ArchSpec::Arch2).unwrap();
        }
        // 4 live sessions match the provisioned capacity: feasible, and the
        // only degraded events are the clamps from the under-subscribed
        // arrivals along the way (1..3 live).
        assert_eq!(pool.effective_budget(), pool.budget());
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn draining_an_idle_pool_is_a_no_op() {
        let mut pool = ServePool::new(tiny_options()).unwrap();
        pool.open(ArchSpec::Arch3).unwrap();
        let batch = pool.drain_batch().unwrap();
        assert!(batch.decisions.is_empty());
        assert!(batch.events.is_empty());
        assert_eq!(pool.metrics().batches, 0, "empty drains do not count");
    }

    #[test]
    fn submitted_traces_must_match_the_pool_grid() {
        let mut pool = ServePool::new(tiny_options()).unwrap();
        let id = pool.open(ArchSpec::Arch1).unwrap();
        // A trace rasterized at the wrong resolution is rejected on submit,
        // not at run time.
        let wrong = arch_trace(
            &ArchSpec::Arch1.architecture(),
            &[PowerLevel::Average],
            0.032,
            50,
            11,
        );
        assert!(pool.submit(id, wrong).is_err());
        assert_eq!(pool.queue_depth(id).unwrap(), 0);
        pool.submit_level(id, PowerLevel::Average, 0.032).unwrap();
        assert_eq!(pool.queue_depth(id).unwrap(), 1);
        assert_eq!(pool.pending_total(), 1);
    }

    #[test]
    fn restore_resumes_ids_past_the_snapshot() {
        let mut pool = ServePool::new(tiny_options()).unwrap();
        let id = pool.open(ArchSpec::Arch2).unwrap();
        let snap = pool.close(id).unwrap();
        let mut other = ServePool::new(tiny_options()).unwrap();
        let restored = other.restore(&snap).unwrap();
        assert_eq!(restored, id);
        // Fresh opens after a restore never collide with the restored id.
        let fresh = other.open(ArchSpec::Arch1).unwrap();
        assert!(fresh > restored);
    }
}
