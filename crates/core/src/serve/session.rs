//! One streaming modulation session: a stack admitted to the
//! [`ServePool`](crate::serve::ServePool), its queue of not-yet-served
//! workload phases, and the [`ResumeState`] thread that keeps its thermal
//! trajectory continuous across decisions — and, via [`SessionSnapshot`],
//! across process restarts.

use std::collections::VecDeque;

use liquamod_grid_sim::snapshot as snap;
use liquamod_grid_sim::GridSimError;

use crate::fleet::StackSurrogate;
use crate::mpsoc::{ArchSpec, MpsocTrace};
use crate::serve::metrics::SessionMetrics;
use crate::transient::ResumeState;
use crate::{CoreError, Result};

/// Stable numeric code for an architecture in snapshot documents.
fn arch_code(arch: ArchSpec) -> f64 {
    match arch {
        ArchSpec::Arch1 => 0.0,
        ArchSpec::Arch2 => 1.0,
        ArchSpec::Arch3 => 2.0,
    }
}

/// Inverse of [`arch_code`].
fn arch_from_code(code: f64) -> Result<ArchSpec> {
    if code == 0.0 {
        Ok(ArchSpec::Arch1)
    } else if code == 1.0 {
        Ok(ArchSpec::Arch2)
    } else if code == 2.0 {
        Ok(ArchSpec::Arch3)
    } else {
        Err(CoreError::GridSim(GridSimError::InvalidSnapshot {
            what: format!("unknown architecture code {code}"),
        }))
    }
}

/// A live streaming session inside the pool.
#[derive(Debug, Clone)]
pub(crate) struct ServeSession {
    id: u64,
    arch: ArchSpec,
    queued: VecDeque<MpsocTrace>,
    resume: Option<ResumeState>,
    segments_done: usize,
    clock_seconds: f64,
    metrics: SessionMetrics,
    /// The session's gradient-vs-flow-share sensitivity surrogate, refit
    /// from every served decision — the trace-unknown half of the pool's
    /// predictive allocation.
    predictor: StackSurrogate,
    /// Total die power of the last segment served, watts — the
    /// denominator of the partial-lookahead power forecast (`None` before
    /// the first decision).
    last_power_w: Option<f64>,
}

impl ServeSession {
    /// A fresh session on `arch` with an empty queue and no history.
    pub(crate) fn new(id: u64, arch: ArchSpec) -> Self {
        Self {
            id,
            arch,
            queued: VecDeque::new(),
            resume: None,
            segments_done: 0,
            clock_seconds: 0.0,
            metrics: SessionMetrics::default(),
            predictor: StackSurrogate::default(),
            last_power_w: None,
        }
    }

    /// Rebuilds a session from a restored snapshot (queue starts empty —
    /// phases submitted but not served when the snapshot was taken were
    /// never acknowledged, so the client re-submits them). The predictor
    /// state rides along, so a surrogate fit interrupted by a restart
    /// continues exactly where it stopped.
    pub(crate) fn from_snapshot(snapshot: &SessionSnapshot) -> Self {
        Self {
            id: snapshot.session_id,
            arch: snapshot.arch,
            queued: VecDeque::new(),
            resume: snapshot.resume.clone(),
            segments_done: snapshot.segments_done,
            clock_seconds: snapshot.clock_seconds,
            metrics: SessionMetrics::default(),
            predictor: snapshot.predictor,
            last_power_w: snapshot.last_power_w,
        }
    }

    #[cfg(test)]
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    pub(crate) fn arch(&self) -> ArchSpec {
        self.arch
    }

    /// Report label, e.g. `session 3 (arch1)`.
    pub(crate) fn label(&self) -> String {
        format!("session {} ({})", self.id, self.arch.label())
    }

    pub(crate) fn queued_len(&self) -> usize {
        self.queued.len()
    }

    pub(crate) fn segments_done(&self) -> usize {
        self.segments_done
    }

    pub(crate) fn clock_seconds(&self) -> f64 {
        self.clock_seconds
    }

    pub(crate) fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// The gradient feedback the allocator sees: the measured inter-layer
    /// gradient at the last decision (0 before the first segment runs —
    /// a cold stack claims no more than the valve minimum).
    pub(crate) fn last_gradient_k(&self) -> f64 {
        self.resume.as_ref().map_or(0.0, |r| r.last_gradient_k)
    }

    pub(crate) fn resume(&self) -> Option<&ResumeState> {
        self.resume.as_ref()
    }

    pub(crate) fn enqueue(&mut self, trace: MpsocTrace) {
        self.queued.push_back(trace);
    }

    pub(crate) fn predictor(&self) -> &StackSurrogate {
        &self.predictor
    }

    /// The session's partial-lookahead power forecast: the front-of-queue
    /// (next to be served) segment's total die power over the last served
    /// segment's. 1.0 — no information — when either side is unknown
    /// (empty queue, no decision yet) or degenerate; the submitted-but-
    /// undrained phase is the *only* lookahead a streaming session has.
    pub(crate) fn forecast_power_ratio(&self) -> f64 {
        let (Some(next), Some(last)) = (self.queued.front(), self.last_power_w) else {
            return 1.0;
        };
        let next_w = next.phases()[0].load.total_power().as_watts();
        if next_w.is_finite() && last.is_finite() && next_w > 0.0 && last > 0.0 {
            next_w / last
        } else {
            1.0
        }
    }

    /// Feeds one served decision back into the predictor: the flow share
    /// it ran at, the gradient it measured, and the segment's total die
    /// power (the denominator of the next forecast).
    pub(crate) fn observe_prediction(&mut self, share: f64, gradient_k: f64, power_w: f64) {
        if self.predictor.observe(share, gradient_k) {
            crate::obs::add("allocator.surrogate_refits", 1);
        }
        if power_w.is_finite() && power_w > 0.0 {
            self.last_power_w = Some(power_w);
        }
    }

    pub(crate) fn pop_trace(&mut self) -> Option<MpsocTrace> {
        self.queued.pop_front()
    }

    /// Folds one served segment back into the session: the new resume
    /// state, the clock advance, and the decision metrics.
    pub(crate) fn apply_decision(
        &mut self,
        resume: ResumeState,
        duration_seconds: f64,
        latency_seconds: f64,
        epochs: usize,
        evaluations: usize,
        degraded: usize,
    ) {
        self.resume = Some(resume);
        self.segments_done += 1;
        self.clock_seconds += duration_seconds;
        self.metrics
            .record_decision(latency_seconds, epochs, evaluations, degraded);
    }

    /// The restartable state of this session right now.
    pub(crate) fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            session_id: self.id,
            arch: self.arch,
            segments_done: self.segments_done,
            clock_seconds: self.clock_seconds,
            predictor: self.predictor,
            last_power_w: self.last_power_w,
            resume: self.resume.clone(),
        }
    }
}

/// Everything needed to restore an in-flight session after a process
/// restart: identity, schedule position, and the controller's
/// [`ResumeState`]. Serializes in the golden-fixture numeric format
/// ([`liquamod_grid_sim::snapshot`]), so a snapshot written before a
/// restart parses back **bitwise** and the restored session continues the
/// exact trajectory of the uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The session's pool identifier.
    pub session_id: u64,
    /// The architecture the session runs.
    pub arch: ArchSpec,
    /// Segments (width decisions) already served.
    pub segments_done: usize,
    /// The session clock: total workload seconds served.
    pub clock_seconds: f64,
    /// The predictive allocator's per-session sensitivity surrogate —
    /// carried so a fit in progress survives the restart (schema v2).
    pub predictor: StackSurrogate,
    /// Total die power of the last served segment, watts (schema v2).
    pub last_power_w: Option<f64>,
    /// The controller hand-over state (`None` before the first segment).
    pub resume: Option<ResumeState>,
}

impl SessionSnapshot {
    /// Serializes the snapshot as one flat golden-format document. The
    /// session header uses keys disjoint from [`ResumeState::to_golden_json`]
    /// (whose body is spliced in verbatim behind `resume_present`), so both
    /// layers parse from the same document.
    #[must_use]
    pub fn to_golden_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"serve_schema_version\": 2,\n");
        snap::push_scalar(&mut out, "session_id", self.session_id as f64, false);
        snap::push_scalar(&mut out, "arch_code", arch_code(self.arch), false);
        snap::push_scalar(&mut out, "segments_done", self.segments_done as f64, false);
        snap::push_scalar(&mut out, "clock_seconds", self.clock_seconds, false);
        snap::push_scalar(
            &mut out,
            "predictor_slope_k_per_scale",
            self.predictor.slope_k_per_scale,
            false,
        );
        snap::push_scalar(
            &mut out,
            "predictor_share",
            self.predictor.last_share,
            false,
        );
        snap::push_scalar(
            &mut out,
            "predictor_gradient_k",
            self.predictor.last_gradient_k,
            false,
        );
        snap::push_scalar(
            &mut out,
            "predictor_observed",
            if self.predictor.observed { 1.0 } else { 0.0 },
            false,
        );
        snap::push_scalar(
            &mut out,
            "last_power_present",
            if self.last_power_w.is_some() {
                1.0
            } else {
                0.0
            },
            false,
        );
        snap::push_scalar(
            &mut out,
            "last_power_w",
            self.last_power_w.unwrap_or(0.0),
            false,
        );
        match &self.resume {
            None => {
                snap::push_scalar(&mut out, "resume_present", 0.0, true);
            }
            Some(resume) => {
                snap::push_scalar(&mut out, "resume_present", 1.0, false);
                let body = resume.to_golden_json();
                let body = body
                    .strip_prefix("{\n")
                    .and_then(|b| b.strip_suffix("}\n"))
                    .expect("ResumeState::to_golden_json emits a braced document");
                out.push_str(body);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Parses a document written by [`SessionSnapshot::to_golden_json`],
    /// bitwise.
    ///
    /// # Errors
    ///
    /// [`CoreError::GridSim`] with [`GridSimError::InvalidSnapshot`] on a
    /// missing key, an unknown schema version or architecture code, or a
    /// malformed number.
    pub fn from_golden_json(json: &str) -> Result<Self> {
        let invalid = |what: String| CoreError::GridSim(GridSimError::InvalidSnapshot { what });
        let version = snap::parse_scalar(json, "serve_schema_version")?;
        if version != 1.0 && version != 2.0 {
            return Err(invalid(format!(
                "unsupported serve snapshot schema version {version}"
            )));
        }
        // Pre-predictive (v1) documents restore with an uninformative
        // predictor — the state they were written without.
        let (predictor, last_power_w) = if version == 2.0 {
            let observed = snap::parse_scalar(json, "predictor_observed")?;
            if observed != 0.0 && observed != 1.0 {
                return Err(invalid(format!(
                    "predictor_observed must be 0 or 1, got {observed}"
                )));
            }
            let power_present = snap::parse_scalar(json, "last_power_present")?;
            if power_present != 0.0 && power_present != 1.0 {
                return Err(invalid(format!(
                    "last_power_present must be 0 or 1, got {power_present}"
                )));
            }
            (
                StackSurrogate {
                    slope_k_per_scale: snap::parse_scalar(json, "predictor_slope_k_per_scale")?,
                    last_share: snap::parse_scalar(json, "predictor_share")?,
                    last_gradient_k: snap::parse_scalar(json, "predictor_gradient_k")?,
                    observed: observed == 1.0,
                },
                (power_present == 1.0)
                    .then(|| snap::parse_scalar(json, "last_power_w"))
                    .transpose()?,
            )
        } else {
            (StackSurrogate::default(), None)
        };
        let id = snap::parse_scalar(json, "session_id")?;
        if !(id.is_finite() && id >= 0.0 && id.fract() == 0.0) {
            return Err(invalid(format!(
                "session_id {id} is not a non-negative integer"
            )));
        }
        let segments = snap::parse_scalar(json, "segments_done")?;
        if !(segments.is_finite() && segments >= 0.0 && segments.fract() == 0.0) {
            return Err(invalid(format!(
                "segments_done {segments} is not a non-negative integer"
            )));
        }
        let present = snap::parse_scalar(json, "resume_present")?;
        let resume = if present == 0.0 {
            None
        } else if present == 1.0 {
            Some(ResumeState::from_golden_json(json)?)
        } else {
            return Err(invalid(format!(
                "resume_present must be 0 or 1, got {present}"
            )));
        };
        Ok(Self {
            session_id: id as u64,
            arch: arch_from_code(snap::parse_scalar(json, "arch_code")?)?,
            segments_done: segments as usize,
            clock_seconds: snap::parse_scalar(json, "clock_seconds")?,
            predictor,
            last_power_w,
            resume,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquamod_thermal_model::WidthProfile;
    use liquamod_units::Length;

    fn sample_resume() -> ResumeState {
        ResumeState {
            state: vec![300.15, 301.0 + 1e-13, -0.0, 2e-3 / 3.0],
            widths: vec![
                vec![WidthProfile::Uniform(Length::from_micrometers(75.0))],
                vec![WidthProfile::piecewise_linear(vec![
                    Length::from_micrometers(50.0),
                    Length::from_micrometers(100.0),
                ])],
            ],
            warm: None,
            last_gradient_k: 4.25,
        }
    }

    fn sample_predictor() -> StackSurrogate {
        StackSurrogate {
            slope_k_per_scale: -7.25 + 1e-13,
            last_share: 1.0 / 3.0,
            last_gradient_k: 4.25,
            observed: true,
        }
    }

    #[test]
    fn snapshot_without_resume_round_trips() {
        let snap = SessionSnapshot {
            session_id: 7,
            arch: ArchSpec::Arch2,
            segments_done: 0,
            clock_seconds: 0.0,
            predictor: StackSurrogate::default(),
            last_power_w: None,
            resume: None,
        };
        let back = SessionSnapshot::from_golden_json(&snap.to_golden_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_with_resume_round_trips_bitwise() {
        let snap = SessionSnapshot {
            session_id: 3,
            arch: ArchSpec::Arch1,
            segments_done: 5,
            clock_seconds: 5.0 * 0.032,
            predictor: sample_predictor(),
            last_power_w: Some(123.456789 + 1e-10),
            resume: Some(sample_resume()),
        };
        let doc = snap.to_golden_json();
        let back = SessionSnapshot::from_golden_json(&doc).unwrap();
        assert_eq!(back.session_id, 3);
        assert_eq!(back.arch, ArchSpec::Arch1);
        assert_eq!(back.segments_done, 5);
        assert_eq!(back.clock_seconds.to_bits(), snap.clock_seconds.to_bits());
        // Mid-fit predictor state survives the document bitwise: the
        // restored session continues the surrogate fit exactly.
        assert_eq!(
            back.predictor.slope_k_per_scale.to_bits(),
            snap.predictor.slope_k_per_scale.to_bits()
        );
        assert_eq!(
            back.predictor.last_share.to_bits(),
            snap.predictor.last_share.to_bits()
        );
        assert_eq!(
            back.predictor.last_gradient_k.to_bits(),
            snap.predictor.last_gradient_k.to_bits()
        );
        assert!(back.predictor.observed);
        assert_eq!(
            back.last_power_w.unwrap().to_bits(),
            snap.last_power_w.unwrap().to_bits()
        );
        let (a, b) = (back.resume.unwrap(), snap.resume.unwrap());
        assert_eq!(a.last_gradient_k.to_bits(), b.last_gradient_k.to_bits());
        assert_eq!(a.state.len(), b.state.len());
        for (x, y) in a.state.iter().zip(&b.state) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.widths, b.widths);
        assert_eq!(a.warm, b.warm);
    }

    #[test]
    fn v1_documents_restore_with_a_cold_predictor() {
        let doc = "{\n  \"serve_schema_version\": 1,\n  \"session_id\": 4e0,\n  \"arch_code\": 2e0,\n  \"segments_done\": 3e0,\n  \"clock_seconds\": 9.6e-2,\n  \"resume_present\": 0e0\n}\n";
        let back = SessionSnapshot::from_golden_json(doc).unwrap();
        assert_eq!(back.session_id, 4);
        assert_eq!(back.predictor, StackSurrogate::default());
        assert_eq!(back.last_power_w, None);
    }

    #[test]
    fn malformed_snapshots_are_typed_errors() {
        for doc in [
            "{\n}\n",
            "{\n  \"serve_schema_version\": 9,\n  \"session_id\": 0e0\n}\n",
            // v2 without the predictor keys it declares.
            "{\n  \"serve_schema_version\": 2,\n  \"session_id\": 0e0\n}\n",
            "{\n  \"serve_schema_version\": 1,\n  \"session_id\": -1e0,\n  \"arch_code\": 0e0,\n  \"segments_done\": 0e0,\n  \"clock_seconds\": 0e0,\n  \"resume_present\": 0e0\n}\n",
            "{\n  \"serve_schema_version\": 1,\n  \"session_id\": 1e0,\n  \"arch_code\": 9e0,\n  \"segments_done\": 0e0,\n  \"clock_seconds\": 0e0,\n  \"resume_present\": 0e0\n}\n",
            "{\n  \"serve_schema_version\": 1,\n  \"session_id\": 1e0,\n  \"arch_code\": 0e0,\n  \"segments_done\": 0e0,\n  \"clock_seconds\": 0e0,\n  \"resume_present\": 2e0\n}\n",
        ] {
            assert!(
                matches!(
                    SessionSnapshot::from_golden_json(doc),
                    Err(CoreError::GridSim(GridSimError::InvalidSnapshot { .. }))
                ),
                "doc should be rejected: {doc}"
            );
        }
    }

    #[test]
    fn session_lifecycle_tracks_queue_and_clock() {
        let mut s = ServeSession::new(1, ArchSpec::Arch3);
        assert_eq!(s.queued_len(), 0);
        assert_eq!(s.last_gradient_k(), 0.0);
        assert_eq!(s.forecast_power_ratio(), 1.0, "no history, no lookahead");
        s.apply_decision(sample_resume(), 0.032, 1e-3, 2, 20, 1);
        assert_eq!(s.segments_done(), 1);
        assert_eq!(s.clock_seconds(), 0.032);
        assert_eq!(s.last_gradient_k(), 4.25);
        assert_eq!(s.metrics().segments, 1);
        // Two decisions at different shares refit the predictor; the state
        // survives snapshot → restore.
        s.observe_prediction(1.0, 10.0, 50.0);
        s.observe_prediction(1.5, 6.0, 80.0);
        assert!(s.predictor().observed);
        assert!((s.predictor().slope_k_per_scale - (-8.0)).abs() < 1e-12);
        let restored = ServeSession::from_snapshot(&s.snapshot());
        assert_eq!(restored.id(), 1);
        assert_eq!(restored.arch(), ArchSpec::Arch3);
        assert_eq!(restored.segments_done(), 1);
        assert_eq!(restored.last_gradient_k(), 4.25);
        assert_eq!(restored.label(), "session 1 (arch3)");
        assert_eq!(restored.predictor(), s.predictor());
        assert_eq!(
            restored.forecast_power_ratio(),
            1.0,
            "restored queue is empty"
        );
    }
}
