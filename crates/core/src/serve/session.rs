//! One streaming modulation session: a stack admitted to the
//! [`ServePool`](crate::serve::ServePool), its queue of not-yet-served
//! workload phases, and the [`ResumeState`] thread that keeps its thermal
//! trajectory continuous across decisions — and, via [`SessionSnapshot`],
//! across process restarts.

use std::collections::VecDeque;

use liquamod_grid_sim::snapshot as snap;
use liquamod_grid_sim::GridSimError;

use crate::mpsoc::{ArchSpec, MpsocTrace};
use crate::serve::metrics::SessionMetrics;
use crate::transient::ResumeState;
use crate::{CoreError, Result};

/// Stable numeric code for an architecture in snapshot documents.
fn arch_code(arch: ArchSpec) -> f64 {
    match arch {
        ArchSpec::Arch1 => 0.0,
        ArchSpec::Arch2 => 1.0,
        ArchSpec::Arch3 => 2.0,
    }
}

/// Inverse of [`arch_code`].
fn arch_from_code(code: f64) -> Result<ArchSpec> {
    if code == 0.0 {
        Ok(ArchSpec::Arch1)
    } else if code == 1.0 {
        Ok(ArchSpec::Arch2)
    } else if code == 2.0 {
        Ok(ArchSpec::Arch3)
    } else {
        Err(CoreError::GridSim(GridSimError::InvalidSnapshot {
            what: format!("unknown architecture code {code}"),
        }))
    }
}

/// A live streaming session inside the pool.
#[derive(Debug, Clone)]
pub(crate) struct ServeSession {
    id: u64,
    arch: ArchSpec,
    queued: VecDeque<MpsocTrace>,
    resume: Option<ResumeState>,
    segments_done: usize,
    clock_seconds: f64,
    metrics: SessionMetrics,
}

impl ServeSession {
    /// A fresh session on `arch` with an empty queue and no history.
    pub(crate) fn new(id: u64, arch: ArchSpec) -> Self {
        Self {
            id,
            arch,
            queued: VecDeque::new(),
            resume: None,
            segments_done: 0,
            clock_seconds: 0.0,
            metrics: SessionMetrics::default(),
        }
    }

    /// Rebuilds a session from a restored snapshot (queue starts empty —
    /// phases submitted but not served when the snapshot was taken were
    /// never acknowledged, so the client re-submits them).
    pub(crate) fn from_snapshot(snapshot: &SessionSnapshot) -> Self {
        Self {
            id: snapshot.session_id,
            arch: snapshot.arch,
            queued: VecDeque::new(),
            resume: snapshot.resume.clone(),
            segments_done: snapshot.segments_done,
            clock_seconds: snapshot.clock_seconds,
            metrics: SessionMetrics::default(),
        }
    }

    #[cfg(test)]
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    pub(crate) fn arch(&self) -> ArchSpec {
        self.arch
    }

    /// Report label, e.g. `session 3 (arch1)`.
    pub(crate) fn label(&self) -> String {
        format!("session {} ({})", self.id, self.arch.label())
    }

    pub(crate) fn queued_len(&self) -> usize {
        self.queued.len()
    }

    pub(crate) fn segments_done(&self) -> usize {
        self.segments_done
    }

    pub(crate) fn clock_seconds(&self) -> f64 {
        self.clock_seconds
    }

    pub(crate) fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// The gradient feedback the allocator sees: the measured inter-layer
    /// gradient at the last decision (0 before the first segment runs —
    /// a cold stack claims no more than the valve minimum).
    pub(crate) fn last_gradient_k(&self) -> f64 {
        self.resume.as_ref().map_or(0.0, |r| r.last_gradient_k)
    }

    pub(crate) fn resume(&self) -> Option<&ResumeState> {
        self.resume.as_ref()
    }

    pub(crate) fn enqueue(&mut self, trace: MpsocTrace) {
        self.queued.push_back(trace);
    }

    pub(crate) fn pop_trace(&mut self) -> Option<MpsocTrace> {
        self.queued.pop_front()
    }

    /// Folds one served segment back into the session: the new resume
    /// state, the clock advance, and the decision metrics.
    pub(crate) fn apply_decision(
        &mut self,
        resume: ResumeState,
        duration_seconds: f64,
        latency_seconds: f64,
        epochs: usize,
        evaluations: usize,
        degraded: usize,
    ) {
        self.resume = Some(resume);
        self.segments_done += 1;
        self.clock_seconds += duration_seconds;
        self.metrics
            .record_decision(latency_seconds, epochs, evaluations, degraded);
    }

    /// The restartable state of this session right now.
    pub(crate) fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            session_id: self.id,
            arch: self.arch,
            segments_done: self.segments_done,
            clock_seconds: self.clock_seconds,
            resume: self.resume.clone(),
        }
    }
}

/// Everything needed to restore an in-flight session after a process
/// restart: identity, schedule position, and the controller's
/// [`ResumeState`]. Serializes in the golden-fixture numeric format
/// ([`liquamod_grid_sim::snapshot`]), so a snapshot written before a
/// restart parses back **bitwise** and the restored session continues the
/// exact trajectory of the uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The session's pool identifier.
    pub session_id: u64,
    /// The architecture the session runs.
    pub arch: ArchSpec,
    /// Segments (width decisions) already served.
    pub segments_done: usize,
    /// The session clock: total workload seconds served.
    pub clock_seconds: f64,
    /// The controller hand-over state (`None` before the first segment).
    pub resume: Option<ResumeState>,
}

impl SessionSnapshot {
    /// Serializes the snapshot as one flat golden-format document. The
    /// session header uses keys disjoint from [`ResumeState::to_golden_json`]
    /// (whose body is spliced in verbatim behind `resume_present`), so both
    /// layers parse from the same document.
    #[must_use]
    pub fn to_golden_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"serve_schema_version\": 1,\n");
        snap::push_scalar(&mut out, "session_id", self.session_id as f64, false);
        snap::push_scalar(&mut out, "arch_code", arch_code(self.arch), false);
        snap::push_scalar(&mut out, "segments_done", self.segments_done as f64, false);
        snap::push_scalar(&mut out, "clock_seconds", self.clock_seconds, false);
        match &self.resume {
            None => {
                snap::push_scalar(&mut out, "resume_present", 0.0, true);
            }
            Some(resume) => {
                snap::push_scalar(&mut out, "resume_present", 1.0, false);
                let body = resume.to_golden_json();
                let body = body
                    .strip_prefix("{\n")
                    .and_then(|b| b.strip_suffix("}\n"))
                    .expect("ResumeState::to_golden_json emits a braced document");
                out.push_str(body);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Parses a document written by [`SessionSnapshot::to_golden_json`],
    /// bitwise.
    ///
    /// # Errors
    ///
    /// [`CoreError::GridSim`] with [`GridSimError::InvalidSnapshot`] on a
    /// missing key, an unknown schema version or architecture code, or a
    /// malformed number.
    pub fn from_golden_json(json: &str) -> Result<Self> {
        let invalid = |what: String| CoreError::GridSim(GridSimError::InvalidSnapshot { what });
        let version = snap::parse_scalar(json, "serve_schema_version")?;
        if version != 1.0 {
            return Err(invalid(format!(
                "unsupported serve snapshot schema version {version}"
            )));
        }
        let id = snap::parse_scalar(json, "session_id")?;
        if !(id.is_finite() && id >= 0.0 && id.fract() == 0.0) {
            return Err(invalid(format!(
                "session_id {id} is not a non-negative integer"
            )));
        }
        let segments = snap::parse_scalar(json, "segments_done")?;
        if !(segments.is_finite() && segments >= 0.0 && segments.fract() == 0.0) {
            return Err(invalid(format!(
                "segments_done {segments} is not a non-negative integer"
            )));
        }
        let present = snap::parse_scalar(json, "resume_present")?;
        let resume = if present == 0.0 {
            None
        } else if present == 1.0 {
            Some(ResumeState::from_golden_json(json)?)
        } else {
            return Err(invalid(format!(
                "resume_present must be 0 or 1, got {present}"
            )));
        };
        Ok(Self {
            session_id: id as u64,
            arch: arch_from_code(snap::parse_scalar(json, "arch_code")?)?,
            segments_done: segments as usize,
            clock_seconds: snap::parse_scalar(json, "clock_seconds")?,
            resume,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquamod_thermal_model::WidthProfile;
    use liquamod_units::Length;

    fn sample_resume() -> ResumeState {
        ResumeState {
            state: vec![300.15, 301.0 + 1e-13, -0.0, 2e-3 / 3.0],
            widths: vec![
                vec![WidthProfile::Uniform(Length::from_micrometers(75.0))],
                vec![WidthProfile::piecewise_linear(vec![
                    Length::from_micrometers(50.0),
                    Length::from_micrometers(100.0),
                ])],
            ],
            warm: None,
            last_gradient_k: 4.25,
        }
    }

    #[test]
    fn snapshot_without_resume_round_trips() {
        let snap = SessionSnapshot {
            session_id: 7,
            arch: ArchSpec::Arch2,
            segments_done: 0,
            clock_seconds: 0.0,
            resume: None,
        };
        let back = SessionSnapshot::from_golden_json(&snap.to_golden_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_with_resume_round_trips_bitwise() {
        let snap = SessionSnapshot {
            session_id: 3,
            arch: ArchSpec::Arch1,
            segments_done: 5,
            clock_seconds: 5.0 * 0.032,
            resume: Some(sample_resume()),
        };
        let doc = snap.to_golden_json();
        let back = SessionSnapshot::from_golden_json(&doc).unwrap();
        assert_eq!(back.session_id, 3);
        assert_eq!(back.arch, ArchSpec::Arch1);
        assert_eq!(back.segments_done, 5);
        assert_eq!(back.clock_seconds.to_bits(), snap.clock_seconds.to_bits());
        let (a, b) = (back.resume.unwrap(), snap.resume.unwrap());
        assert_eq!(a.last_gradient_k.to_bits(), b.last_gradient_k.to_bits());
        assert_eq!(a.state.len(), b.state.len());
        for (x, y) in a.state.iter().zip(&b.state) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.widths, b.widths);
        assert_eq!(a.warm, b.warm);
    }

    #[test]
    fn malformed_snapshots_are_typed_errors() {
        for doc in [
            "{\n}\n",
            "{\n  \"serve_schema_version\": 2,\n  \"session_id\": 0e0\n}\n",
            "{\n  \"serve_schema_version\": 1,\n  \"session_id\": -1e0,\n  \"arch_code\": 0e0,\n  \"segments_done\": 0e0,\n  \"clock_seconds\": 0e0,\n  \"resume_present\": 0e0\n}\n",
            "{\n  \"serve_schema_version\": 1,\n  \"session_id\": 1e0,\n  \"arch_code\": 9e0,\n  \"segments_done\": 0e0,\n  \"clock_seconds\": 0e0,\n  \"resume_present\": 0e0\n}\n",
            "{\n  \"serve_schema_version\": 1,\n  \"session_id\": 1e0,\n  \"arch_code\": 0e0,\n  \"segments_done\": 0e0,\n  \"clock_seconds\": 0e0,\n  \"resume_present\": 2e0\n}\n",
        ] {
            assert!(
                matches!(
                    SessionSnapshot::from_golden_json(doc),
                    Err(CoreError::GridSim(GridSimError::InvalidSnapshot { .. }))
                ),
                "doc should be rejected: {doc}"
            );
        }
    }

    #[test]
    fn session_lifecycle_tracks_queue_and_clock() {
        let mut s = ServeSession::new(1, ArchSpec::Arch3);
        assert_eq!(s.queued_len(), 0);
        assert_eq!(s.last_gradient_k(), 0.0);
        s.apply_decision(sample_resume(), 0.032, 1e-3, 2, 20, 1);
        assert_eq!(s.segments_done(), 1);
        assert_eq!(s.clock_seconds(), 0.032);
        assert_eq!(s.last_gradient_k(), 4.25);
        assert_eq!(s.metrics().segments, 1);
        let restored = ServeSession::from_snapshot(&s.snapshot());
        assert_eq!(restored.id(), 1);
        assert_eq!(restored.arch(), ArchSpec::Arch3);
        assert_eq!(restored.segments_done(), 1);
        assert_eq!(restored.last_gradient_k(), 4.25);
        assert_eq!(restored.label(), "session 1 (arch3)");
    }
}
