//! Serve-layer drivers: the identity gates the bench and tests run, and
//! the soak harness that exercises a pool through arrivals, departures,
//! snapshot/restore churn and budget clamps.
//!
//! Three verifiers back the `sweep -- serve` acceptance gates:
//!
//! * [`verify_streaming_identity`] — phases fed one at a time through a
//!   single-session pool must reproduce the one-shot
//!   [`ModulationController::run`] **bitwise**;
//! * [`verify_snapshot_restore`] — interrupting a stream, serializing the
//!   session through [`SessionSnapshot::to_golden_json`], restoring it in a
//!   *fresh pool* and continuing must match the uninterrupted stream;
//! * [`run_soak`] twice at different worker counts, compared with
//!   [`soak_outcomes_match`] — the pool's decisions are deterministic
//!   under parallel fan-out.
//!
//! [`ModulationController::run`]: crate::transient::ModulationController::run

use std::collections::BTreeMap;
use std::time::Instant;

use liquamod_floorplan::PowerLevel;

use crate::faults::{DegradedEvent, DegradedKind};
use crate::mpsoc::{arch_trace, ArchSpec, MpsocConfig, MpsocModulated};
use crate::serve::metrics::PoolMetrics;
use crate::serve::pool::{ServeOptions, ServePool, WidthDecision};
use crate::serve::session::SessionSnapshot;
use crate::transient::{ModulationPolicy, TransientOutcome, TransientSnapshot};
use crate::{CoreError, Result};

/// The workload level a soak session submits for its `i`-th phase: the
/// UltraSPARC T1 average/peak burst, alternating.
#[must_use]
pub fn soak_level(i: usize) -> PowerLevel {
    if i.is_multiple_of(2) {
        PowerLevel::Average
    } else {
        PowerLevel::Peak
    }
}

/// Drains a pool until every queued phase is served, failing loudly on an
/// eviction or a stalled pool (verification must not silently shorten).
fn drain_to_completion(pool: &mut ServePool) -> Result<Vec<WidthDecision>> {
    let mut decisions = Vec::new();
    while pool.pending_total() > 0 {
        let batch = pool.drain_batch()?;
        if let Some(evicted) = batch
            .events
            .iter()
            .find(|e| e.kind == DegradedKind::SessionEvicted)
        {
            return Err(CoreError::InvalidConfig {
                what: format!("verification stream evicted: {}", evicted.detail),
            });
        }
        if batch.decisions.is_empty() {
            return Err(CoreError::InvalidConfig {
                what: "pool made no progress with phases pending".into(),
            });
        }
        decisions.extend(batch.decisions);
    }
    Ok(decisions)
}

/// Streams `levels` one phase at a time through a fresh single-session
/// pool, returning the per-phase decisions in order.
fn stream_levels(
    config: &MpsocConfig,
    policy: ModulationPolicy,
    arch: ArchSpec,
    levels: &[PowerLevel],
    phase_seconds: f64,
) -> Result<Vec<WidthDecision>> {
    let mut pool = ServePool::new(ServeOptions::single(config.clone(), policy))?;
    let id = pool.open(arch)?;
    for &level in levels {
        pool.submit_level(id, level, phase_seconds)?;
    }
    drain_to_completion(&mut pool)
}

/// Bitwise comparison of one streamed snapshot against its one-shot twin
/// over every physical channel (timestamps are segment-local by contract
/// and excluded).
fn snapshot_bits_equal(a: &TransientSnapshot, b: &TransientSnapshot) -> bool {
    a.peak_k.to_bits() == b.peak_k.to_bits()
        && a.min_k.to_bits() == b.min_k.to_bits()
        && a.gradient_k.to_bits() == b.gradient_k.to_bits()
        && a.injected_w.to_bits() == b.injected_w.to_bits()
        && a.advected_w.to_bits() == b.advected_w.to_bits()
        && a.stored_joules.to_bits() == b.stored_joules.to_bits()
}

/// The largest absolute per-channel difference between two snapshots over
/// the temperature channels, kelvin.
fn snapshot_abs_diff_k(a: &TransientSnapshot, b: &TransientSnapshot) -> f64 {
    (a.peak_k - b.peak_k)
        .abs()
        .max((a.min_k - b.min_k).abs())
        .max((a.gradient_k - b.gradient_k).abs())
}

/// Compares a stitched stream of outcomes against a reference stream,
/// returning `(bitwise, max_abs_diff_k, steps)`.
fn compare_snapshot_streams(
    stream: &[&TransientOutcome],
    reference: &[&TransientOutcome],
) -> (bool, f64, usize) {
    let a: Vec<&TransientSnapshot> = stream.iter().flat_map(|o| &o.snapshots).collect();
    let b: Vec<&TransientSnapshot> = reference.iter().flat_map(|o| &o.snapshots).collect();
    if a.len() != b.len() {
        return (false, f64::INFINITY, a.len());
    }
    let mut bitwise = true;
    let mut max_diff = 0.0f64;
    for (x, y) in a.iter().zip(&b) {
        bitwise &= snapshot_bits_equal(x, y);
        max_diff = max_diff.max(snapshot_abs_diff_k(x, y));
    }
    (bitwise, max_diff, a.len())
}

/// Compares the stitched epoch records of a stream against a reference:
/// same firing pattern, same candidates, same adopted widths.
fn compare_epoch_streams(stream: &[&TransientOutcome], reference: &[&TransientOutcome]) -> bool {
    let a: Vec<_> = stream.iter().flat_map(|o| &o.epochs).collect();
    let b: Vec<_> = reference.iter().flat_map(|o| &o.epochs).collect();
    a.len() == b.len()
        && a.iter().zip(&b).all(|(x, y)| {
            x.adopted == y.adopted
                && x.candidate_gradient_k.to_bits() == y.candidate_gradient_k.to_bits()
                && x.incumbent_gradient_k.to_bits() == y.incumbent_gradient_k.to_bits()
                && x.widths_um == y.widths_um
        })
}

/// What [`verify_streaming_identity`] measured.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingIdentity {
    /// Time steps compared.
    pub steps: usize,
    /// Epoch records compared.
    pub epochs: usize,
    /// `true` when every physical channel and epoch record matched
    /// **bitwise** — the gate the bench enforces.
    pub bitwise: bool,
    /// Largest absolute temperature-channel difference, kelvin (0 when
    /// bitwise).
    pub max_abs_diff_k: f64,
}

/// Runs the same workload once as a one-shot
/// [`ModulationController::run`](crate::transient::ModulationController::run)
/// and once streamed phase-by-phase through a single-session pool, and
/// compares the two trajectories bitwise.
///
/// # Errors
///
/// Propagates pool and controller errors; fails when the stream stalls or
/// is evicted.
pub fn verify_streaming_identity(
    config: &MpsocConfig,
    policy: ModulationPolicy,
    arch: ArchSpec,
    levels: &[PowerLevel],
    phase_seconds: f64,
) -> Result<StreamingIdentity> {
    let architecture = arch.architecture();
    let trace = arch_trace(&architecture, levels, phase_seconds, config.nx, config.nz);
    let one_shot = MpsocModulated::for_arch(&architecture, config.clone())?
        .controller(policy)?
        .run(&trace)?;
    let streamed = stream_levels(config, policy, arch, levels, phase_seconds)?;
    let stream_outcomes: Vec<&TransientOutcome> = streamed.iter().map(|d| &d.outcome).collect();
    let reference = [&one_shot];
    let (snap_bitwise, max_abs_diff_k, steps) =
        compare_snapshot_streams(&stream_outcomes, &reference);
    let epochs_bitwise = compare_epoch_streams(&stream_outcomes, &reference);
    Ok(StreamingIdentity {
        steps,
        epochs: one_shot.epochs.len(),
        bitwise: snap_bitwise && epochs_bitwise,
        max_abs_diff_k,
    })
}

/// What [`verify_snapshot_restore`] measured.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotFidelity {
    /// Time steps compared.
    pub steps: usize,
    /// `true` when the restored continuation matched the uninterrupted
    /// stream bitwise (the JSON round trip preserves every bit, so this is
    /// the expected outcome; the bench gates at 1e-9 to state the contract).
    pub bitwise: bool,
    /// Largest absolute temperature-channel difference, kelvin.
    pub max_abs_diff_k: f64,
    /// `true` when parse(serialize(snapshot)) re-serialized to the exact
    /// same document.
    pub json_round_trip: bool,
    /// Size of the serialized snapshot document, bytes.
    pub snapshot_bytes: usize,
}

/// Streams `levels`, interrupts the session halfway, round-trips it
/// through [`SessionSnapshot::to_golden_json`], restores it into a fresh
/// pool and finishes the stream — then compares against the uninterrupted
/// stream.
///
/// # Errors
///
/// Propagates pool, controller and snapshot-parsing errors; requires at
/// least two phases (there is no halfway point otherwise).
pub fn verify_snapshot_restore(
    config: &MpsocConfig,
    policy: ModulationPolicy,
    arch: ArchSpec,
    levels: &[PowerLevel],
    phase_seconds: f64,
) -> Result<SnapshotFidelity> {
    if levels.len() < 2 {
        return Err(CoreError::InvalidConfig {
            what: "snapshot/restore verification needs at least two phases".into(),
        });
    }
    let uninterrupted = stream_levels(config, policy, arch, levels, phase_seconds)?;

    let cut = levels.len() / 2;
    let mut first = ServePool::new(ServeOptions::single(config.clone(), policy))?;
    let id = first.open(arch)?;
    for &level in &levels[..cut] {
        first.submit_level(id, level, phase_seconds)?;
    }
    let mut decisions = drain_to_completion(&mut first)?;
    let snapshot = first.snapshot(id)?;
    drop(first); // the process "restart": only the document survives

    let doc = snapshot.to_golden_json();
    let parsed = SessionSnapshot::from_golden_json(&doc)?;
    let json_round_trip = parsed.to_golden_json() == doc;

    let mut second = ServePool::new(ServeOptions::single(config.clone(), policy))?;
    let restored = second.restore(&parsed)?;
    for &level in &levels[cut..] {
        second.submit_level(restored, level, phase_seconds)?;
    }
    decisions.extend(drain_to_completion(&mut second)?);

    let resumed: Vec<&TransientOutcome> = decisions.iter().map(|d| &d.outcome).collect();
    let reference: Vec<&TransientOutcome> = uninterrupted.iter().map(|d| &d.outcome).collect();
    let (snap_bitwise, max_abs_diff_k, steps) = compare_snapshot_streams(&resumed, &reference);
    let epochs_bitwise = compare_epoch_streams(&resumed, &reference);
    Ok(SnapshotFidelity {
        steps,
        bitwise: snap_bitwise && epochs_bitwise,
        max_abs_diff_k,
        json_round_trip,
        snapshot_bytes: doc.len(),
    })
}

/// The shape of a soak run: which sessions arrive, how much work each
/// submits, and how the fleet churns while serving.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakPlan {
    /// One architecture per session, in arrival order.
    pub sessions: Vec<ArchSpec>,
    /// Phases each session streams ([`soak_level`] schedule).
    pub phases_per_session: usize,
    /// Duration of every phase, seconds.
    pub phase_seconds: f64,
    /// Sessions opened before the first batch (fewer than the plan total
    /// forces the under-subscribed budget clamp, and the rest arriving
    /// mid-run exercises arrival revalidation).
    pub initial_sessions: usize,
    /// Pending sessions admitted after each batch (≥ 1 keeps arrivals
    /// flowing; the default staggers them one per batch).
    pub arrivals_per_batch: usize,
    /// After this many served batches, the lowest-id live session is
    /// closed, round-tripped through its golden snapshot document and
    /// restored — mid-run snapshot/restore churn under load.
    pub restore_at_batch: Option<u64>,
}

impl SoakPlan {
    /// A small default: the three Fig. 7 architectures twice over, four
    /// phases each, arriving two-first — under-subscribed against a
    /// six-session provisioning — with restore churn after two batches.
    #[must_use]
    pub fn bench_default() -> Self {
        Self {
            sessions: vec![
                ArchSpec::Arch1,
                ArchSpec::Arch2,
                ArchSpec::Arch3,
                ArchSpec::Arch1,
                ArchSpec::Arch2,
                ArchSpec::Arch3,
            ],
            phases_per_session: 4,
            phase_seconds: 0.032,
            initial_sessions: 2,
            arrivals_per_batch: 1,
            restore_at_batch: Some(2),
        }
    }

    fn validate(&self) -> Result<()> {
        let bad = |what: String| Err(CoreError::InvalidConfig { what });
        if self.sessions.is_empty() {
            return bad("a soak plan needs at least one session".into());
        }
        if self.phases_per_session == 0 {
            return bad("phases_per_session must be ≥ 1".into());
        }
        if !(self.phase_seconds.is_finite() && self.phase_seconds > 0.0) {
            return bad(format!(
                "phase_seconds must be positive, got {}",
                self.phase_seconds
            ));
        }
        if self.initial_sessions == 0 {
            return bad("initial_sessions must be ≥ 1".into());
        }
        Ok(())
    }
}

/// Everything a soak run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakOutcome {
    /// Every width decision served, in service order.
    pub decisions: Vec<WidthDecision>,
    /// Final snapshot of every session that departed (restore churn
    /// snapshots included).
    pub snapshots: Vec<SessionSnapshot>,
    /// The pool's complete degraded-event log.
    pub events: Vec<DegradedEvent>,
    /// The pool's final metrics.
    pub metrics: PoolMetrics,
    /// Batches that served work.
    pub batches: u64,
    /// Sessions that ran to completion.
    pub sessions_served: usize,
    /// Wall-clock duration of the soak (measurement only).
    pub wall_seconds: f64,
}

impl SoakOutcome {
    /// Width decisions per wall-clock second.
    #[must_use]
    pub fn decisions_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.decisions.len() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Completed sessions per wall-clock second.
    #[must_use]
    pub fn sessions_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.sessions_served as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// The largest time-peak gradient any decision reported, kelvin.
    #[must_use]
    pub fn peak_gradient_k(&self) -> f64 {
        self.decisions
            .iter()
            .map(|d| d.peak_gradient_k)
            .fold(0.0, f64::max)
    }

    /// Occurrences of each degraded-event kind, by stable label.
    #[must_use]
    pub fn event_kind_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.kind.label()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

/// Runs a full service lifecycle against one pool: staggered arrivals into
/// an under-provisioned fleet, incremental phase submission, mid-run
/// snapshot/restore churn, departures as sessions finish — the soak the
/// `BENCH_serve.json` record measures.
///
/// # Errors
///
/// Propagates pool errors and rejects degenerate plans; fails loudly if
/// the pool stops making progress.
pub fn run_soak(options: &ServeOptions, plan: &SoakPlan) -> Result<SoakOutcome> {
    plan.validate()?;
    let total = plan.sessions.len();
    let mut pool = ServePool::new(options.clone())?;
    let started = Instant::now();
    // Phases submitted so far per session — also the next soak_level index.
    let mut submitted: BTreeMap<u64, usize> = BTreeMap::new();
    let mut opened = 0usize;
    let mut decisions: Vec<WidthDecision> = Vec::new();
    let mut snapshots: Vec<SessionSnapshot> = Vec::new();
    let mut restored_once = false;

    while opened < plan.initial_sessions.min(total) {
        let id = pool.open(plan.sessions[opened])?;
        pool.submit_level(id, soak_level(0), plan.phase_seconds)?;
        submitted.insert(id, 1);
        opened += 1;
    }

    let cap = ((total * plan.phases_per_session + total + 8) * 4) as u64;
    let mut iterations = 0u64;
    loop {
        iterations += 1;
        if iterations > cap {
            return Err(CoreError::InvalidConfig {
                what: format!("soak did not converge within {cap} iterations"),
            });
        }
        let batch = pool.drain_batch()?;
        for decision in &batch.decisions {
            let id = decision.session_id;
            if pool.queue_depth(id).is_err() {
                continue; // evicted later in the same batch
            }
            let count = submitted.get(&id).copied().unwrap_or(0);
            if count < plan.phases_per_session {
                pool.submit_level(id, soak_level(count), plan.phase_seconds)?;
                submitted.insert(id, count + 1);
            } else if pool.queue_depth(id)? == 0 {
                // Departure: the session streamed everything it will.
                snapshots.push(pool.close(id)?);
            }
        }
        decisions.extend(batch.decisions);

        let mut arrivals = 0usize;
        while opened < total && arrivals < plan.arrivals_per_batch.max(1) {
            let id = pool.open(plan.sessions[opened])?;
            pool.submit_level(id, soak_level(0), plan.phase_seconds)?;
            submitted.insert(id, 1);
            opened += 1;
            arrivals += 1;
        }

        if !restored_once
            && plan
                .restore_at_batch
                .is_some_and(|at| pool.metrics().batches >= at)
        {
            restored_once = true;
            if let Some(&id) = pool.session_ids().first() {
                let snapshot = pool.close(id)?;
                // The churn must survive the serialized form, not the
                // in-memory one.
                let parsed = SessionSnapshot::from_golden_json(&snapshot.to_golden_json())?;
                snapshots.push(snapshot);
                if parsed.segments_done < plan.phases_per_session {
                    let id = pool.restore(&parsed)?;
                    // Re-submit from where the snapshot left off (queued
                    // phases were dropped by the close).
                    pool.submit_level(id, soak_level(parsed.segments_done), plan.phase_seconds)?;
                    submitted.insert(id, parsed.segments_done + 1);
                }
                // A session that had already streamed everything departs
                // with the close above — nothing to restore.
            }
        }

        if opened == total && pool.pending_total() == 0 {
            break;
        }
    }
    for id in pool.session_ids() {
        snapshots.push(pool.close(id)?);
    }

    let sessions_served = snapshots
        .iter()
        .filter(|s| s.segments_done >= plan.phases_per_session)
        .count();
    Ok(SoakOutcome {
        decisions,
        snapshots,
        events: pool.events().to_vec(),
        metrics: pool.metrics().clone(),
        batches: pool.metrics().batches,
        sessions_served,
        wall_seconds: started.elapsed().as_secs_f64(),
    })
}

/// Whether two soak runs produced the same service output — every decision
/// bitwise on every physical channel, every event and snapshot equal —
/// ignoring only the wall-clock measurements. The determinism gate:
/// [`run_soak`] at any two worker counts must satisfy this.
#[must_use]
pub fn soak_outcomes_match(a: &SoakOutcome, b: &SoakOutcome) -> bool {
    if a.decisions.len() != b.decisions.len()
        || a.snapshots != b.snapshots
        || a.events != b.events
        || a.batches != b.batches
        || a.sessions_served != b.sessions_served
    {
        return false;
    }
    a.decisions.iter().zip(&b.decisions).all(|(x, y)| {
        x.session_id == y.session_id
            && x.arch == y.arch
            && x.segment == y.segment
            && x.time_seconds.to_bits() == y.time_seconds.to_bits()
            && x.flow_scale.to_bits() == y.flow_scale.to_bits()
            && x.peak_gradient_k.to_bits() == y.peak_gradient_k.to_bits()
            && x.peak_temperature_k.to_bits() == y.peak_temperature_k.to_bits()
            && x.min_width_um.to_bits() == y.min_width_um.to_bits()
            && x.max_width_um.to_bits() == y.max_width_um.to_bits()
            && x.epochs_adopted == y.epochs_adopted
            && x.evaluations == y.evaluations
            && compare_snapshot_streams(&[&x.outcome], &[&y.outcome]).0
            && compare_epoch_streams(&[&x.outcome], &[&y.outcome])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_levels_alternate() {
        assert_eq!(soak_level(0), PowerLevel::Average);
        assert_eq!(soak_level(1), PowerLevel::Peak);
        assert_eq!(soak_level(2), PowerLevel::Average);
    }

    #[test]
    fn degenerate_plans_are_rejected() {
        let base = SoakPlan::bench_default();
        let mut p = base.clone();
        p.sessions.clear();
        assert!(p.validate().is_err());
        let mut p = base.clone();
        p.phases_per_session = 0;
        assert!(p.validate().is_err());
        let mut p = base.clone();
        p.phase_seconds = 0.0;
        assert!(p.validate().is_err());
        let mut p = base;
        p.initial_sessions = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn bench_default_plan_is_valid_and_undersubscribed() {
        let plan = SoakPlan::bench_default();
        assert!(plan.validate().is_ok());
        assert!(plan.initial_sessions < plan.sessions.len());
    }
}
