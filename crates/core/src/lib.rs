//! `liquamod` — thermal balancing of liquid-cooled 3D-MPSoCs using channel
//! modulation.
//!
//! A from-scratch Rust reproduction of Sabry, Sridhar & Atienza, *"Thermal
//! Balancing of Liquid-Cooled 3D-MPSoCs Using Channel Modulation"* (DATE
//! 2012). Inter-tier microchannel cooling creates inlet→outlet thermal
//! gradients; this crate implements the paper's design-time fix — *modulate
//! the channel width along the flow* — as an optimal control problem solved
//! by the direct sequential method.
//!
//! The workspace layering (each crate usable on its own):
//!
//! * [`liquamod_units`] — SI quantity newtypes;
//! * [`liquamod_microfluidics`] — Nusselt/friction correlations, pressure;
//! * [`liquamod_thermal_model`] — the paper's §III analytical state-space
//!   model and its collocation BVP solver;
//! * [`liquamod_grid_sim`] — a 3D-ICE-style finite-volume simulator
//!   (independent validation reference, thermal maps);
//! * [`liquamod_floorplan`] — the workloads: Tests A/B, UltraSPARC T1, the
//!   Fig. 7 architectures;
//! * [`liquamod_optimal_control`] — the NLP layer (projected L-BFGS,
//!   augmented Lagrangian…);
//! * **this crate** — the §IV optimal channel-modulation flow, the
//!   min/max/optimal comparison methodology of §V, canned experiment
//!   definitions for every figure of the paper, the [`sweep`] engine
//!   that fans grids of scenario variants out across worker threads, the
//!   [`transient`] subsystem that closes the modulation loop over
//!   time-varying workload traces (epoch-based re-optimization driving the
//!   finite-volume transient stepper), the [`mpsoc`] subsystem that
//!   runs the paper's full two-die Fig. 7 stacks — two jointly optimized
//!   cavities — through that same loop, the [`fleet`] sharding layer
//!   that co-optimizes many stacks under one shared pump budget, and the
//!   [`serve`] streaming service that multiplexes long-running stack
//!   sessions — phases in, width decisions out, snapshot/restore across
//!   restarts — over the same deterministic machinery, and the [`obs`]
//!   observability layer — hierarchical spans, a named-counter registry
//!   and Perfetto-loadable trace exports, recorded thread-locally and
//!   merged through the same index-ordered join that keeps parallel runs
//!   bitwise-equal to serial ones.
//!
//! # Quickstart
//!
//! ```
//! use liquamod::prelude::*;
//!
//! // The paper's Test A on a fast mesh: optimally modulate one channel.
//! let config = OptimizationConfig::fast();
//! let comparison = experiments::test_a(&ModelParams::date2012(), &config)?;
//! // Optimal modulation beats both uniform baselines (paper Fig. 5a).
//! assert!(comparison.optimal.gradient_k < comparison.best_uniform_gradient_k());
//! # Ok::<(), liquamod::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod chart;
mod compare;
mod csv;
mod design;
mod error;
pub mod experiments;
pub mod faults;
pub mod fleet;
pub mod mpsoc;
pub mod obs;
mod scenario;
pub mod serve;
pub mod sweep;
pub mod transient;

pub use compare::{CaseResult, DesignComparison};
pub use csv::CsvTable;
pub use design::{
    optimize, optimize_min_pumping, optimize_resumed, optimize_warm, DesignOutcome,
    DesignWarmStart, ObjectiveKind, OptimizationConfig, SolverKind,
};
pub use error::CoreError;
pub use faults::{
    run_faulted_fleet, run_faults_sweep, DegradedEvent, DegradedKind, FaultEvent, FaultScenario,
    FaultSchedule, FaultedFleetOutcome, FaultsReport, FaultsRow, FaultsSweepOptions, SegmentFaults,
    ValveMode, EXCURSION_BOUND,
};
pub use fleet::{
    allocate, run_fleet, run_fleet_sweep, BudgetPolicy, FleetGrid, FleetOutcome, FleetReport,
    FleetRow, PumpBudget,
};
pub use mpsoc::{run_mpsoc_sweep, MpsocConfig, MpsocGrid, MpsocModulated, MpsocReport, MpsocRow};
pub use obs::{ObsEvent, ObsReport, ObsSession, SpanRecord};
pub use scenario::{mpsoc_model, strip_model, MpsocScenario};
pub use serve::{
    run_soak, soak_outcomes_match, verify_snapshot_restore, verify_streaming_identity,
    LatencyHistogram, PoolMetrics, ServeBatch, ServeOptions, ServePool, SessionSnapshot,
    SnapshotFidelity, SoakOutcome, SoakPlan, StreamingIdentity, WidthDecision,
};
pub use sweep::{
    run_sweep, ExecutionMode, LoadSpec, SweepGrid, SweepOptions, SweepReport, SweepRow,
    SweepVariant,
};
pub use transient::{
    run_transient_sweep, CavityProfiles, EpochCandidate, EpochPolicy, ModulatedStack,
    ModulationController, ModulationPolicy, ResumeState, StripModulated, TransientConfig,
    TransientGrid, TransientOutcome, TransientReport, TransientRow, TransientSweepOptions,
};

pub use liquamod_floorplan as floorplan;
pub use liquamod_grid_sim as grid_sim;
pub use liquamod_microfluidics as microfluidics;
pub use liquamod_optimal_control as optimal_control;
pub use liquamod_thermal_model as thermal_model;
pub use liquamod_units as units;

/// Convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// The items most users need, re-exported flat.
pub mod prelude {
    pub use crate::experiments;
    pub use crate::{
        mpsoc_model, optimize, optimize_min_pumping, optimize_warm, strip_model, CaseResult,
        CoreError, DesignComparison, DesignOutcome, MpsocScenario, ObjectiveKind,
        OptimizationConfig, SolverKind,
    };
    pub use liquamod_floorplan::{arch, niagara, testcase, PowerLevel};
    pub use liquamod_thermal_model::{
        ChannelColumn, HeatProfile, Model, ModelParams, Solution, SolveOptions, SolveWorkspace,
        WidthProfile, WorkspacePool,
    };
    pub use liquamod_units::{
        Length, LinearHeatFlux, Power, Pressure, Temperature, TemperatureDifference,
        VolumetricFlowRate,
    };
}
