//! Minimal ASCII line charts for profile series (temperature vs z, width
//! vs z) — the terminal rendition of the paper's Fig. 5/6 plots.

/// A single series of `(x, y)` samples with a glyph to draw it with.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Sample points (x ascending is not required but renders best).
    pub points: Vec<(f64, f64)>,
    /// Glyph used for this series.
    pub glyph: char,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>, glyph: char) -> Self {
        Self {
            label: label.into(),
            points,
            glyph,
        }
    }
}

/// Renders one or more series into a fixed-size character grid with a
/// y-axis legend. Later series overdraw earlier ones where they collide.
///
/// Returns an empty string when no series has any points.
pub fn line_chart(series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    let x_span = (x_max - x_min).max(1e-30);
    let y_span = (y_max - y_min).max(1e-30);

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        // Dense sampling along segments so lines stay connected.
        for pair in s.points.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            let steps = width * 2;
            for k in 0..=steps {
                let t = k as f64 / steps as f64;
                let x = x0 + t * (x1 - x0);
                let y = y0 + t * (y1 - y0);
                let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
                let row = (((y_max - y) / y_span) * (height - 1) as f64).round() as usize;
                grid[row.min(height - 1)][col.min(width - 1)] = s.glyph;
            }
        }
        if s.points.len() == 1 {
            let (x, y) = s.points[0];
            let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row = (((y_max - y) / y_span) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = s.glyph;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y_here = y_max - y_span * r as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_here:>10.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!("{:>10}  x: [{:.3} .. {:.3}]   ", "", x_min, x_max));
    for s in series {
        out.push_str(&format!("{} {}   ", s.glyph, s.label));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_render_nothing() {
        assert_eq!(line_chart(&[], 40, 10), "");
        assert_eq!(line_chart(&[Series::new("e", vec![], '*')], 40, 10), "");
    }

    #[test]
    fn renders_grid_with_legend() {
        let s = Series::new(
            "ramp",
            (0..10).map(|i| (i as f64, i as f64 * 2.0)).collect(),
            '*',
        );
        let chart = line_chart(&[s], 40, 10);
        let lines: Vec<&str> = chart.lines().collect();
        // 10 grid rows + axis + legend.
        assert_eq!(lines.len(), 12);
        assert!(chart.contains("* ramp"));
        assert!(chart.contains("x: [0.000 .. 9.000]"));
        // A rising ramp puts the glyph at top-right and bottom-left.
        assert!(lines[0].trim_end().ends_with('*'));
    }

    #[test]
    fn two_series_overdraw() {
        let a = Series::new("low", vec![(0.0, 0.0), (1.0, 0.0)], 'a');
        let b = Series::new("high", vec![(0.0, 1.0), (1.0, 1.0)], 'b');
        let chart = line_chart(&[a, b], 30, 6);
        assert!(chart.contains('a'));
        assert!(chart.contains('b'));
    }

    #[test]
    fn single_point_series_is_plotted() {
        let s = Series::new("dot", vec![(0.5, 0.5)], 'o');
        let chart = line_chart(&[s], 20, 5);
        assert!(chart.contains('o'));
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let s = Series::new("flat", vec![(1.0, 3.0), (1.0, 3.0)], '#');
        let chart = line_chart(&[s], 20, 5);
        assert!(chart.contains('#'));
    }

    #[test]
    fn minimum_dimensions_are_enforced() {
        let s = Series::new("tiny", vec![(0.0, 0.0), (1.0, 1.0)], '*');
        let chart = line_chart(&[s], 1, 1);
        assert!(!chart.is_empty());
        // Clamped to at least 16 columns wide inside the border.
        let first = chart.lines().next().unwrap();
        assert!(first.len() >= 16);
    }
}
