//! Scenario builders: workloads → thermal models.
//!
//! Two shapes cover the paper's whole evaluation:
//!
//! * [`strip_model`] — the Fig. 2 test structure (one channel between two
//!   active strips), loaded by a [`StripLoad`] (Tests A/B);
//! * [`mpsoc_model`] — a two-die 3D-MPSoC over one microchannel cavity,
//!   loaded by a Fig. 7 [`Architecture`] rasterized at a chosen power level
//!   and reduced to grouped channel columns (the §III model-reduction).

use crate::Result;
use liquamod_floorplan::{arch::Architecture, testcase::StripLoad, FluxGrid, PowerLevel};
use liquamod_thermal_model::{ChannelColumn, HeatProfile, Model, ModelParams, WidthProfile};
use liquamod_units::{Length, LinearHeatFlux};

/// The Fig. 2 test strip's channel length (1 cm) — shared by the
/// analytical [`strip_model`] and its finite-volume twin
/// [`crate::transient::strip_stack`], which must model the same geometry
/// for the modulation controller's adopt/reject comparisons to be valid.
pub(crate) fn strip_length() -> Length {
    Length::from_centimeters(1.0)
}

/// Builds the single-channel strip model of the paper's Fig. 2 for a Test
/// A/B load: channel length 1 cm, both layers carrying the load's segment
/// fluxes over one pitch.
///
/// # Errors
///
/// Propagates model-construction failures (invalid parameters).
pub fn strip_model(load: &StripLoad, params: &ModelParams) -> Result<Model> {
    let d = strip_length();
    let to_profile = |fluxes: &[f64]| {
        let q: Vec<LinearHeatFlux> = StripLoad::layer_w_per_m(fluxes, params.pitch.si())
            .into_iter()
            .map(LinearHeatFlux::from_w_per_m)
            .collect();
        HeatProfile::equal_segments(&q, d)
    };
    let column = ChannelColumn::new(WidthProfile::uniform(params.w_max))
        .with_heat_top(to_profile(&load.top_w_cm2))
        .with_heat_bottom(to_profile(&load.bottom_w_cm2));
    Ok(Model::new(params.clone(), d, vec![column])?)
}

/// A prepared 3D-MPSoC scenario: the reduced-order thermal model plus the
/// rasterized flux grids it was built from (needed again for the
/// finite-volume thermal maps).
#[derive(Debug, Clone)]
pub struct MpsocScenario {
    /// The grouped-column thermal model.
    pub model: Model,
    /// Top-die flux grid at the scenario's power level.
    pub top_grid: FluxGrid,
    /// Bottom-die flux grid at the scenario's power level.
    pub bottom_grid: FluxGrid,
    /// Physical channels per column group.
    pub group_size: usize,
    /// Power level the grids were rasterized at.
    pub level: PowerLevel,
}

/// Builds the reduced-order model of a two-die 3D-MPSoC (paper §V-B).
///
/// The die width defines `die_width/pitch` physical channels; they are
/// grouped into `n_groups` columns of equal size (the paper's model
/// reduction: "combine two or more channels under a single set of top and
/// bottom nodes"). Heat from each die is rasterized at channel resolution
/// and aggregated per group. The top die heats the columns' top layer, the
/// bottom die the bottom layer; coolant flows along the die depth.
///
/// # Errors
///
/// [`crate::CoreError::InvalidConfig`] when `n_groups` does not divide the
/// channel count; model errors are propagated.
pub fn mpsoc_model(
    arch: &Architecture,
    level: PowerLevel,
    params: &ModelParams,
    n_groups: usize,
) -> Result<MpsocScenario> {
    let die_width = arch.top_die().width();
    let die_depth = arch.top_die().depth();
    let n_channels = (die_width.si() / params.pitch.si()).round() as usize;
    if n_groups == 0 || !n_channels.is_multiple_of(n_groups) {
        return Err(crate::CoreError::InvalidConfig {
            what: format!("{n_groups} groups must evenly divide {n_channels} channels"),
        });
    }
    let group_size = n_channels / n_groups;
    // Rasterize at physical-channel resolution across the flow and a
    // comfortable resolution along it (one cell per 100 µm like the pitch).
    let nz = (die_depth.si() / params.pitch.si()).round() as usize;
    let top_grid = arch.top_die().rasterize(n_channels, nz, level);
    let bottom_grid = arch.bottom_die().rasterize(n_channels, nz, level);

    let mut columns = Vec::with_capacity(n_groups);
    for g in 0..n_groups {
        columns.push(
            ChannelColumn::new(WidthProfile::uniform(params.w_max))
                .with_group_size(group_size)
                .with_heat_top(crate::bridge::group_heat_profile(
                    &top_grid, g, group_size, 1.0,
                ))
                .with_heat_bottom(crate::bridge::group_heat_profile(
                    &bottom_grid,
                    g,
                    group_size,
                    1.0,
                )),
        );
    }
    let model = Model::new(params.clone(), die_depth, columns)?;
    Ok(MpsocScenario {
        model,
        top_grid,
        bottom_grid,
        group_size,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquamod_floorplan::{arch, testcase};

    #[test]
    fn strip_test_a_total_power() {
        let params = ModelParams::date2012();
        let model = strip_model(&testcase::test_a(), &params).unwrap();
        // 50 W/cm² × 100 µm pitch × 1 cm × 2 layers = 1 W.
        let total = model.columns()[0]
            .heat_top()
            .total_power(model.length())
            .as_watts()
            + model.columns()[0]
                .heat_bottom()
                .total_power(model.length())
                .as_watts();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn strip_test_b_has_segments() {
        let params = ModelParams::date2012();
        let model = strip_model(&testcase::test_b(), &params).unwrap();
        let bps = model.columns()[0].heat_top().breakpoints();
        assert_eq!(bps.len(), testcase::TEST_B_SEGMENTS - 1);
    }

    #[test]
    fn mpsoc_group_arithmetic() {
        let params = ModelParams::date2012();
        // 10 mm die / 100 µm pitch = 100 channels.
        let s = mpsoc_model(&arch::arch1(), PowerLevel::Peak, &params, 10).unwrap();
        assert_eq!(s.model.columns().len(), 10);
        assert_eq!(s.group_size, 10);
        assert_eq!(s.model.n_physical_channels(), 100);
        // Invalid split is rejected.
        assert!(mpsoc_model(&arch::arch1(), PowerLevel::Peak, &params, 7).is_err());
        assert!(mpsoc_model(&arch::arch1(), PowerLevel::Peak, &params, 0).is_err());
    }

    #[test]
    fn mpsoc_conserves_die_power() {
        let params = ModelParams::date2012();
        let a1 = arch::arch1();
        let s = mpsoc_model(&a1, PowerLevel::Peak, &params, 10).unwrap();
        let model_power: f64 = s
            .model
            .columns()
            .iter()
            .map(|c| {
                c.heat_top().total_power(s.model.length()).as_watts()
                    + c.heat_bottom().total_power(s.model.length()).as_watts()
            })
            .sum();
        let die_power = a1.top_die().total_power(PowerLevel::Peak).as_watts()
            + a1.bottom_die().total_power(PowerLevel::Peak).as_watts();
        assert!(
            (model_power - die_power).abs() / die_power < 1e-9,
            "model {model_power} W vs dies {die_power} W"
        );
    }

    #[test]
    fn average_level_draws_less_power() {
        let params = ModelParams::date2012();
        let a1 = arch::arch1();
        let peak = mpsoc_model(&a1, PowerLevel::Peak, &params, 10).unwrap();
        let avg = mpsoc_model(&a1, PowerLevel::Average, &params, 10).unwrap();
        let sum = |s: &MpsocScenario| -> f64 {
            s.model
                .columns()
                .iter()
                .map(|c| {
                    c.heat_top().total_power(s.model.length()).as_watts()
                        + c.heat_bottom().total_power(s.model.length()).as_watts()
                })
                .sum()
        };
        assert!(sum(&avg) < 0.8 * sum(&peak));
    }

    #[test]
    fn arch2_staggering_shifts_heat_between_layers() {
        let params = ModelParams::date2012();
        let s = mpsoc_model(&arch::arch2(), PowerLevel::Peak, &params, 10).unwrap();
        // For Arch. 2 the bottom die is mirrored: near the inlet the TOP die
        // has hot cores while the BOTTOM die has its coolest band there.
        let col = &s.model.columns()[0];
        let inlet = Length::from_millimeters(1.0);
        let top_q = col.heat_top().value_at(inlet).si();
        let bottom_q = col.heat_bottom().value_at(inlet).si();
        assert!(
            top_q > bottom_q,
            "top die cores at the inlet should dominate: {top_q} vs {bottom_q}"
        );
    }
}
