//! Tiny CSV/table formatting for the bench harness output.

use std::fmt::Write as _;

/// A header plus rows of string cells, rendered as CSV or an aligned text
/// table. The bench binaries print both so results are simultaneously
/// human-readable and machine-parsable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column header.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width — a malformed
    /// report is a bug in the experiment code, caught at the source.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (comma-separated; cells containing commas or quotes
    /// are quoted and inner quotes doubled).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let write_line = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            let _ = writeln!(out, "{}", line.join(","));
        };
        write_line(&self.header, &mut out);
        for row in &self.rows {
            write_line(row, &mut out);
        }
        out
    }

    /// Renders as an aligned, pipe-separated text table.
    pub fn to_aligned(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_line = |cells: &[String], out: &mut String| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "| {} |", padded.join(" | "));
        };
        write_line(&self.header, &mut out);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            write_line(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = CsvTable::new(vec!["name", "value"]);
        t.push_row(vec!["plain", "1.5"]);
        t.push_row(vec!["with,comma", "quote\"inside"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1.5");
        assert_eq!(lines[2], "\"with,comma\",\"quote\"\"inside\"");
    }

    #[test]
    fn aligned_rendering() {
        let mut t = CsvTable::new(vec!["case", "gradient"]);
        t.push_row(vec!["minimum", "23.1"]);
        t.push_row(vec!["optimal", "16.0"]);
        let s = t.to_aligned();
        assert!(s.contains("| minimum | "));
        assert!(s.lines().count() == 4);
        // Columns align: all lines equal length.
        let lens: Vec<usize> = s.lines().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn len_and_empty() {
        let mut t = CsvTable::new(vec!["a"]);
        assert!(t.is_empty());
        t.push_row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = CsvTable::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }
}
