//! The paper's §V comparison methodology: uniformly-minimum vs
//! uniformly-maximum vs optimally-modulated channel widths.

use crate::design::{optimize_warm, solve_uniform, DesignOutcome, OptimizationConfig};
use crate::Result;
use liquamod_thermal_model::{Model, Solution, SolveWorkspace, WidthProfile};

/// Metrics of one evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// Case label ("minimum" / "maximum" / "optimal").
    pub label: String,
    /// Thermal gradient (max − min silicon temperature), kelvin.
    pub gradient_k: f64,
    /// Peak silicon temperature, °C.
    pub peak_celsius: f64,
    /// Largest per-channel pressure drop across columns, bar.
    pub max_pressure_bar: f64,
    /// Hydraulic pump power for the whole stack, watts.
    pub pump_power_w: f64,
    /// The paper's Eq. (7) cost integral.
    pub cost_gradient_squared: f64,
}

impl CaseResult {
    fn evaluate(label: &str, model: &Model, solution: &Solution) -> Result<Self> {
        let drops = model.pressure_drops()?;
        let max_dp = drops.iter().map(|p| p.as_bar()).fold(0.0, f64::max);
        Ok(Self {
            label: label.to_string(),
            gradient_k: solution.thermal_gradient().as_kelvin(),
            peak_celsius: solution.peak_temperature().as_celsius(),
            max_pressure_bar: max_dp,
            pump_power_w: model.pump_power()?.as_watts(),
            cost_gradient_squared: solution.cost_gradient_squared(),
        })
    }
}

/// Result of the three-way comparison on one scenario.
#[derive(Debug, Clone)]
pub struct DesignComparison {
    /// Uniformly minimum channel width everywhere.
    pub minimum: CaseResult,
    /// Uniformly maximum channel width everywhere.
    pub maximum: CaseResult,
    /// Optimally modulated widths.
    pub optimal: CaseResult,
    /// Full outcome of the optimization run (profiles, solution…).
    pub outcome: DesignOutcome,
    /// Solutions of the two uniform baselines (profile plotting).
    pub minimum_solution: Solution,
    /// See [`DesignComparison::minimum_solution`].
    pub maximum_solution: Solution,
}

impl DesignComparison {
    /// Runs the full §V comparison on `model`: solve the two uniform-width
    /// baselines, run the optimizer, and collect the metrics.
    ///
    /// # Errors
    ///
    /// Propagates solver and configuration failures.
    pub fn run(model: &Model, config: &OptimizationConfig) -> Result<Self> {
        Self::run_warm(model, config, None)
    }

    /// [`DesignComparison::run`] with an optional optimizer warm start (a
    /// normalized [`DesignOutcome::x_opt`] from a neighbouring scenario; see
    /// [`optimize_warm`]). The uniform baselines are unaffected by the warm
    /// start — only the optimizer's trajectory changes.
    ///
    /// # Errors
    ///
    /// Propagates solver and configuration failures.
    pub fn run_warm(
        model: &Model,
        config: &OptimizationConfig,
        start: Option<&[f64]>,
    ) -> Result<Self> {
        // The two uniform baselines share one solve workspace; the width
        // ranges are plain `Copy` fields, so no ModelParams clone is needed.
        let (w_min, w_max) = (model.params().w_min, model.params().w_max);
        let mut ws = SolveWorkspace::new();
        let (min_model, min_solution) =
            solve_uniform(model, w_min, config.mesh_intervals, &mut ws)?;
        let (max_model, max_solution) =
            solve_uniform(model, w_max, config.mesh_intervals, &mut ws)?;
        let outcome = optimize_warm(model, config, start)?;
        Ok(Self {
            minimum: CaseResult::evaluate("minimum", &min_model, &min_solution)?,
            maximum: CaseResult::evaluate("maximum", &max_model, &max_solution)?,
            optimal: CaseResult::evaluate("optimal", &outcome.model, &outcome.solution)?,
            outcome,
            minimum_solution: min_solution,
            maximum_solution: max_solution,
        })
    }

    /// The smaller of the two uniform baselines' gradients — the reference
    /// the paper quotes its reduction percentages against ("compared to the
    /// uniform channel width case").
    #[must_use]
    pub fn best_uniform_gradient_k(&self) -> f64 {
        self.minimum.gradient_k.min(self.maximum.gradient_k)
    }

    /// Gradient reduction of the optimal design vs the best uniform
    /// baseline, as a fraction in `[0, 1]`.
    #[must_use]
    pub fn gradient_reduction(&self) -> f64 {
        let base = self.best_uniform_gradient_k();
        if base <= 0.0 {
            0.0
        } else {
            (base - self.optimal.gradient_k) / base
        }
    }

    /// The paper's §V-B side observation: the optimally modulated design's
    /// peak temperature should approach the minimum-width case's peak (the
    /// best achievable within the width range) and undercut the
    /// maximum-width case's peak.
    #[must_use]
    pub fn peak_tracks_minimum_width(&self, tolerance_k: f64) -> bool {
        self.optimal.peak_celsius <= self.minimum.peak_celsius + tolerance_k
            && self.optimal.peak_celsius <= self.maximum.peak_celsius + 1e-9
    }

    /// The optimal width profiles (one per column).
    #[must_use]
    pub fn optimal_widths(&self) -> &[WidthProfile] {
        &self.outcome.widths
    }

    /// Formats the three cases as the rows of a small report table.
    #[must_use]
    pub fn summary_rows(&self) -> Vec<Vec<String>> {
        [&self.minimum, &self.maximum, &self.optimal]
            .iter()
            .map(|c| {
                vec![
                    c.label.clone(),
                    format!("{:.2}", c.gradient_k),
                    format!("{:.2}", c.peak_celsius),
                    format!("{:.2}", c.max_pressure_bar),
                    format!("{:.4}", c.pump_power_w),
                    format!("{:.4e}", c.cost_gradient_squared),
                ]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::strip_model;
    use liquamod_floorplan::testcase;
    use liquamod_thermal_model::ModelParams;

    #[test]
    fn comparison_on_test_a_fast() {
        let params = ModelParams::date2012();
        let model = strip_model(&testcase::test_a(), &params).unwrap();
        let cmp = DesignComparison::run(&model, &OptimizationConfig::fast()).unwrap();
        // Fig. 5a shape: the two uniform baselines nearly tie; the optimal
        // modulation beats both.
        let rel_uniform_gap =
            (cmp.minimum.gradient_k - cmp.maximum.gradient_k).abs() / cmp.maximum.gradient_k;
        assert!(
            rel_uniform_gap < 0.2,
            "uniform baselines should be close: {rel_uniform_gap}"
        );
        assert!(
            cmp.gradient_reduction() > 0.05,
            "reduction = {}",
            cmp.gradient_reduction()
        );
        // §V-B: optimal peak ≈ min-width peak ≤ max-width peak.
        assert!(cmp.peak_tracks_minimum_width(1.0));
        // Pressure ordering: narrow uniform ≫ optimal ≥ wide uniform.
        assert!(cmp.minimum.max_pressure_bar > cmp.optimal.max_pressure_bar);
        assert!(cmp.optimal.max_pressure_bar >= cmp.maximum.max_pressure_bar - 1e-9);
        // Pump power follows pressure at equal flow.
        assert!(cmp.minimum.pump_power_w > cmp.maximum.pump_power_w);
        // Report table has 3 rows × 6 columns.
        let rows = cmp.summary_rows();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.len() == 6));
    }
}
