//! Conversions between the analytical-model world and the finite-volume
//! simulator: flux grids → power maps, width profiles → per-cell widths,
//! and a one-call builder for the paper's two-die stacks.

use crate::Result;
use liquamod_floorplan::FluxGrid;
use liquamod_grid_sim::{CavitySpec, CavityWidths, PowerMap, Stack, StackBuilder};
use liquamod_thermal_model::{HeatProfile, ModelParams, WidthProfile};
use liquamod_units::{Length, LinearHeatFlux, Power};

/// Aggregates `group_size` adjacent grid columns (group `group`) into one
/// per-channel heat profile, scaled by `factor` — the §III model-reduction
/// exchange format ("combine two or more channels under a single set of top
/// and bottom nodes") shared by the steady MPSoC scenario
/// ([`crate::mpsoc_model`]) and the transient MPSoC stack family
/// ([`crate::mpsoc::MpsocModulated`]).
///
/// # Panics
///
/// Panics if the group's column range exceeds the grid (the callers
/// validate `group_size · n_groups == nx` at construction).
#[must_use]
pub fn group_heat_profile(
    grid: &FluxGrid,
    group: usize,
    group_size: usize,
    factor: f64,
) -> HeatProfile {
    let mut profile = HeatProfile::zero();
    for i in group * group_size..(group + 1) * group_size {
        let steps = grid
            .column_steps(i)
            .into_iter()
            .map(|(z, q)| (Length::from_meters(z), LinearHeatFlux::from_w_per_m(q)))
            .collect();
        profile = profile.add(&HeatProfile::from_steps(steps));
    }
    profile.scaled(factor)
}

/// Converts a rasterized flux grid into a grid-sim power map (same grid).
pub fn power_map_from_grid(grid: &FluxGrid) -> PowerMap {
    let (nx, nz) = grid.dims();
    let mut map = PowerMap::zeros(nx, nz);
    let watts = grid.cell_watts();
    for j in 0..nz {
        for i in 0..nx {
            map.set_cell(i, j, Power::from_watts(watts[j * nx + i]));
        }
    }
    map
}

/// Samples per-column width profiles at `nz` cell centres, expanding
/// grouped columns so that every physical channel gets its group's profile.
///
/// `profiles[g]` applies to `group_size` adjacent channels; the result has
/// `profiles.len() × group_size` columns of `nz` samples each.
pub fn cavity_widths_from_profiles(
    profiles: &[WidthProfile],
    group_size: usize,
    channel_length: Length,
    nz: usize,
) -> CavityWidths {
    let mut columns = Vec::with_capacity(profiles.len() * group_size);
    for profile in profiles {
        let samples: Vec<Length> = (0..nz)
            .map(|j| {
                let z = Length::from_meters((j as f64 + 0.5) * channel_length.si() / nz as f64);
                profile.width_at(z, channel_length)
            })
            .collect();
        for _ in 0..group_size {
            columns.push(samples.clone());
        }
    }
    CavityWidths::PerColumn(columns)
}

/// Builds the paper's two-die stack (active silicon / cavity / active
/// silicon) for the finite-volume simulator:
///
/// * die extents from the flux grids;
/// * both dies as `H_Si`-thick silicon layers carrying the grids' power;
/// * one cavity at `H_C` with the given widths and the model's coolant,
///   flow rate and inlet temperature.
///
/// The paper's convention maps the *top* die onto the analytical model's
/// top layer: grid-sim layers are listed bottom→top.
///
/// # Errors
///
/// Propagates stack-validation failures (mismatched grids, bad widths).
pub fn two_die_stack(
    params: &ModelParams,
    top_grid: &FluxGrid,
    bottom_grid: &FluxGrid,
    widths: CavityWidths,
) -> Result<Stack> {
    let (nx, nz) = top_grid.dims();
    let stack = StackBuilder::new(top_grid.die_width(), top_grid.die_length(), nx, nz)
        .inlet_temperature(params.inlet_temperature)
        .silicon_layer("bottom-die", params.h_si)
        .powered_by(power_map_from_grid(bottom_grid))
        .microchannel_cavity_with(CavitySpec {
            height: params.h_c,
            coolant: params.coolant.clone(),
            flow_rate_per_channel: params.flow_rate_per_channel,
            nusselt: params.nusselt,
            wall_material: liquamod_grid_sim::Material::silicon(),
            widths,
        })
        .silicon_layer("top-die", params.h_si)
        .powered_by(power_map_from_grid(top_grid))
        .build()?;
    Ok(stack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquamod_floorplan::{arch, PowerLevel};

    #[test]
    fn power_map_conserves_power() {
        let grid = arch::arch1().top_die().rasterize(20, 22, PowerLevel::Peak);
        let map = power_map_from_grid(&grid);
        assert!(
            (map.total().as_watts() - grid.total_power().as_watts()).abs() < 1e-9,
            "map {} W vs grid {} W",
            map.total().as_watts(),
            grid.total_power().as_watts()
        );
    }

    #[test]
    fn width_sampling_expands_groups() {
        let d = Length::from_centimeters(1.0);
        let profiles = vec![
            WidthProfile::uniform(Length::from_micrometers(20.0)),
            WidthProfile::piecewise_constant(vec![
                Length::from_micrometers(50.0),
                Length::from_micrometers(10.0),
            ]),
        ];
        let widths = cavity_widths_from_profiles(&profiles, 3, d, 4);
        match widths {
            CavityWidths::PerColumn(cols) => {
                assert_eq!(cols.len(), 6);
                assert_eq!(cols[0].len(), 4);
                // First group uniform.
                assert!(cols[1]
                    .iter()
                    .all(|w| (w.as_micrometers() - 20.0).abs() < 1e-9));
                // Second group steps 50 → 10 at half length.
                assert!((cols[3][0].as_micrometers() - 50.0).abs() < 1e-9);
                assert!((cols[3][3].as_micrometers() - 10.0).abs() < 1e-9);
            }
            other => panic!("expected per-column widths, got {other:?}"),
        }
    }

    #[test]
    fn two_die_stack_builds_and_solves() {
        let params = liquamod_thermal_model::ModelParams::date2012();
        let a1 = arch::arch1();
        // Tiny grid for speed: 10 channels, 11 z-cells.
        let top = a1.top_die().rasterize(10, 11, PowerLevel::Peak);
        let bottom = a1.bottom_die().rasterize(10, 11, PowerLevel::Peak);
        let stack = two_die_stack(
            &params,
            &top,
            &bottom,
            CavityWidths::Uniform(Length::from_micrometers(50.0)),
        )
        .unwrap();
        assert_eq!(stack.n_layers(), 3);
        let field = stack.solve_steady().unwrap();
        assert!(field.peak_temperature().as_kelvin() > 300.0);
        assert!(field.energy_balance_residual() < 1e-6);
    }
}
