//! A compact finite-volume thermal simulator for 3D ICs with inter-tier
//! microchannel liquid cooling, in the style of 3D-ICE (Sridhar et al.,
//! ICCAD 2010 — the paper's ref. \[8\]).
//!
//! The DATE'12 channel-modulation paper validates its analytical model
//! against 3D-ICE; since the original C simulator is outside this
//! reproduction's dependency budget, this crate provides an independent
//! numerical reference implementing the same compact-model idea:
//!
//! * the stack is a pile of **solid layers** and **microchannel cavities**,
//!   each one finite-volume cell thick;
//! * every solid cell couples to its six neighbours through conduction
//!   conductances (harmonic half-cell series across layer interfaces);
//! * every cavity cell holds one channel pitch: a bulk-coolant node with
//!   upwind **advection** along the flow direction, convective exchange with
//!   the solid cells above and below (4-resistor channel cell), and a
//!   silicon **side-wall** conduction path connecting the neighbouring
//!   layers directly;
//! * channel widths may vary per column and along the flow direction, so
//!   width-modulated designs (the paper's contribution) can be simulated
//!   directly — this is how the Fig. 9 thermal maps are regenerated.
//!
//! Steady state solves the (nonsymmetric, because of advection) sparse
//! system with BiCGSTAB + Jacobi preconditioning; transients use backward
//! Euler on the same assembly.
//!
//! # Example
//!
//! ```
//! use liquamod_grid_sim::{CavityWidths, PowerMap, StackBuilder};
//! use liquamod_units::{HeatFlux, Length, Temperature};
//!
//! // A small two-active-layer stack, 10 channels × 20 cells, uniform load.
//! let stack = StackBuilder::new(
//!     Length::from_millimeters(1.0),  // die extent across the flow
//!     Length::from_millimeters(2.0),  // die extent along the flow
//!     10,                             // channel columns
//!     20,                             // cells along the flow
//! )
//! .silicon_layer("bottom-die", Length::from_micrometers(50.0))
//! .powered_by(PowerMap::uniform_flux(HeatFlux::from_w_per_cm2(50.0), 10, 20,
//!     Length::from_millimeters(1.0), Length::from_millimeters(2.0)))
//! .microchannel_cavity(CavityWidths::Uniform(Length::from_micrometers(50.0)))
//! .silicon_layer("top-die", Length::from_micrometers(50.0))
//! .powered_by(PowerMap::uniform_flux(HeatFlux::from_w_per_cm2(50.0), 10, 20,
//!     Length::from_millimeters(1.0), Length::from_millimeters(2.0)))
//! .build()?;
//! let field = stack.solve_steady()?;
//! assert!(field.peak_temperature() > Temperature::from_kelvin(300.0));
//! # Ok::<(), liquamod_grid_sim::GridSimError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ascii;
mod assemble;
mod error;
mod expstep;
mod field;
mod material;
mod power;
pub mod snapshot;
pub mod solver;
pub mod sparse;
mod stack;
mod transient;

pub use assemble::AssemblyCache;
pub use error::GridSimError;
pub use expstep::ExponentialOptions;
pub use field::{LayerField, ThermalField};
pub use material::Material;
pub use power::PowerMap;
pub use stack::{CavitySpec, CavityWidths, Stack, StackBuilder};
pub use transient::{StepperKind, TransientOptions, TransientSample, TransientStepper};

/// Convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, GridSimError>;
