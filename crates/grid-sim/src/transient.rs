//! Transient simulation by backward Euler.
//!
//! The lumped energy balance `C·dT/dt + A·T = p` is stepped implicitly:
//! `(A + C/Δt)·T_{n+1} = p + (C/Δt)·T_n`. Backward Euler is
//! unconditionally stable, which matters here because coolant cells have
//! tiny capacitances compared to the advection rates (sub-millisecond
//! thermal constants) while silicon responds over milliseconds.

use crate::solver::{self, SolverOptions};
use crate::stack::Stack;
use crate::{GridSimError, Result, ThermalField};
use liquamod_units::Temperature;

/// Controls for a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// Time step (seconds).
    pub dt_seconds: f64,
    /// Number of steps to take.
    pub steps: usize,
    /// Initial uniform temperature (defaults to the stack inlet).
    pub initial: Option<Temperature>,
    /// Linear-solver controls for each implicit step.
    pub solver: SolverOptions,
}

impl Default for TransientOptions {
    fn default() -> Self {
        Self {
            dt_seconds: 1e-3,
            steps: 100,
            initial: None,
            solver: SolverOptions::default(),
        }
    }
}

/// A captured instant of a transient run.
#[derive(Debug, Clone)]
pub struct TransientSample {
    /// Simulation time (seconds).
    pub time_seconds: f64,
    /// Field at this instant.
    pub field: ThermalField,
}

impl Stack {
    /// Runs a transient simulation from a uniform initial temperature and
    /// returns one sample per step (including the final state).
    ///
    /// # Errors
    ///
    /// * [`GridSimError::InvalidTransient`] for non-positive `dt` or zero
    ///   steps;
    /// * [`GridSimError::NoConvergence`] if an implicit step fails to solve.
    pub fn solve_transient(&self, options: &TransientOptions) -> Result<Vec<TransientSample>> {
        if !(options.dt_seconds.is_finite() && options.dt_seconds > 0.0) {
            return Err(GridSimError::InvalidTransient {
                what: format!("dt must be positive, got {}", options.dt_seconds),
            });
        }
        if options.steps == 0 {
            return Err(GridSimError::InvalidTransient {
                what: "steps must be > 0".into(),
            });
        }
        let asm = self.assemble();
        let n = asm.matrix.size();
        let inv_dt = 1.0 / options.dt_seconds;
        let system = asm.matrix.plus_diagonal(&asm.capacitance, inv_dt);
        let t0 = options.initial.unwrap_or(self.inlet).si();
        let mut temps = vec![t0; n];
        let mut samples = Vec::with_capacity(options.steps);
        for step in 1..=options.steps {
            let rhs: Vec<f64> = (0..n)
                .map(|i| asm.rhs[i] + asm.capacitance[i] * inv_dt * temps[i])
                .collect();
            let (next, _stats) = solver::bicgstab(&system, &rhs, &temps, &options.solver)?;
            temps = next;
            samples.push(TransientSample {
                time_seconds: step as f64 * options.dt_seconds,
                field: self.field_from_solution(&asm, &temps),
            });
        }
        Ok(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{CavityWidths, StackBuilder};
    use crate::PowerMap;
    use liquamod_units::{HeatFlux, Length};

    fn mm(v: f64) -> Length {
        Length::from_millimeters(v)
    }

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn stack() -> Stack {
        let p = PowerMap::uniform_flux(HeatFlux::from_w_per_cm2(50.0), 4, 8, mm(0.4), mm(0.8));
        StackBuilder::new(mm(0.4), mm(0.8), 4, 8)
            .silicon_layer("bottom", um(50.0))
            .powered_by(p.clone())
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("top", um(50.0))
            .powered_by(p)
            .build()
            .unwrap()
    }

    #[test]
    fn transient_heats_monotonically_toward_steady() {
        let s = stack();
        let steady = s.solve_steady().unwrap();
        let samples = s
            .solve_transient(&TransientOptions {
                dt_seconds: 2e-3,
                steps: 60,
                ..Default::default()
            })
            .unwrap();
        // Peak temperature rises monotonically (pure step response)…
        for w in samples.windows(2) {
            assert!(
                w[1].field.peak_temperature().as_kelvin()
                    >= w[0].field.peak_temperature().as_kelvin() - 1e-9
            );
        }
        // …and approaches the steady state from below.
        let last = samples.last().unwrap();
        let gap = steady.peak_temperature().as_kelvin() - last.field.peak_temperature().as_kelvin();
        assert!(gap >= -1e-6, "transient overshot steady state by {gap}");
        assert!(
            gap < 0.05 * (steady.peak_temperature().as_kelvin() - 300.0),
            "not converged: gap {gap}"
        );
    }

    #[test]
    fn zero_power_transient_stays_at_initial() {
        let s = StackBuilder::new(mm(0.4), mm(0.8), 4, 8)
            .silicon_layer("bottom", um(50.0))
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("top", um(50.0))
            .build()
            .unwrap();
        let samples = s
            .solve_transient(&TransientOptions {
                dt_seconds: 1e-3,
                steps: 5,
                ..Default::default()
            })
            .unwrap();
        for sample in &samples {
            assert!((sample.field.peak_temperature().as_kelvin() - 300.0).abs() < 1e-6);
        }
    }

    #[test]
    fn hot_start_cools_toward_steady() {
        let s = stack();
        let samples = s
            .solve_transient(&TransientOptions {
                dt_seconds: 2e-3,
                steps: 50,
                initial: Some(Temperature::from_kelvin(400.0)),
                ..Default::default()
            })
            .unwrap();
        let first = samples
            .first()
            .unwrap()
            .field
            .peak_temperature()
            .as_kelvin();
        let last = samples.last().unwrap().field.peak_temperature().as_kelvin();
        assert!(
            last < first,
            "overheated stack must cool ({first} → {last})"
        );
        let steady = s.solve_steady().unwrap().peak_temperature().as_kelvin();
        assert!((last - steady).abs() < 0.05 * (400.0 - steady));
    }

    #[test]
    fn rejects_bad_options() {
        let s = stack();
        assert!(matches!(
            s.solve_transient(&TransientOptions {
                dt_seconds: 0.0,
                ..Default::default()
            }),
            Err(GridSimError::InvalidTransient { .. })
        ));
        assert!(matches!(
            s.solve_transient(&TransientOptions {
                steps: 0,
                ..Default::default()
            }),
            Err(GridSimError::InvalidTransient { .. })
        ));
    }

    #[test]
    fn sample_times_are_uniform() {
        let s = stack();
        let samples = s
            .solve_transient(&TransientOptions {
                dt_seconds: 1e-3,
                steps: 3,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(samples.len(), 3);
        assert!((samples[0].time_seconds - 1e-3).abs() < 1e-15);
        assert!((samples[2].time_seconds - 3e-3).abs() < 1e-15);
    }
}
