//! Transient simulation by backward Euler.
//!
//! The lumped energy balance `C·dT/dt + A·T = p` is stepped implicitly:
//! `(A + C/Δt)·T_{n+1} = p + (C/Δt)·T_n`. Backward Euler is
//! unconditionally stable, which matters here because coolant cells have
//! tiny capacitances compared to the advection rates (sub-millisecond
//! thermal constants) while silicon responds over milliseconds.
//!
//! Two entry points share the same discretization:
//!
//! * [`Stack::solve_transient`] — the one-shot step-response run (fixed
//!   stack, fixed power, a given number of steps);
//! * [`Stack::transient_stepper`] — an incremental [`TransientStepper`]
//!   that advances one step at a time and whose node-temperature state can
//!   be carried into a stepper on a *different* stack with the same grid.
//!   This is what closed-loop drivers (channel modulation over time-varying
//!   workloads) build on: swap the stack (new widths, new power map), keep
//!   the temperatures.

use crate::assemble::{Assembly, AssemblyCache};
use crate::expstep::{CondensedExp, ExponentialOptions};
use crate::solver::{self, SolverOptions};
use crate::stack::Stack;
use crate::{sparse::CsrMatrix, GridSimError, Result, ThermalField};
use liquamod_units::Temperature;

/// Which integrator backend a [`TransientStepper`] advances with.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum StepperKind {
    /// Fully implicit backward Euler on the complete fine-grid system
    /// (one Jacobi-preconditioned BiCGSTAB solve per step). The accuracy
    /// reference and the default.
    #[default]
    BackwardEuler,
    /// Split-step condensed exponential integrator: implicit upwind
    /// advection on the fine grid plus an exact matrix exponential of the
    /// Galerkin-condensed conduction network, eigendecomposed once per
    /// width profile. O(n) per step after the one-time factorization; see
    /// the `expstep` module docs for the derivation and the error model.
    Exponential(ExponentialOptions),
}

/// Controls for a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// Time step (seconds).
    pub dt_seconds: f64,
    /// Number of steps to take ([`Stack::solve_transient`] only; a
    /// [`TransientStepper`] is stepped explicitly by its caller).
    pub steps: usize,
    /// Initial uniform temperature (defaults to the stack inlet).
    pub initial: Option<Temperature>,
    /// Linear-solver controls for each implicit step (backward Euler only;
    /// the exponential backend has no iterative solve).
    pub solver: SolverOptions,
    /// Integrator backend (backward Euler unless overridden).
    pub stepper: StepperKind,
}

impl Default for TransientOptions {
    fn default() -> Self {
        Self {
            dt_seconds: 1e-3,
            steps: 100,
            initial: None,
            solver: SolverOptions::default(),
            stepper: StepperKind::BackwardEuler,
        }
    }
}

/// A captured instant of a transient run.
#[derive(Debug, Clone)]
pub struct TransientSample {
    /// Simulation time (seconds).
    pub time_seconds: f64,
    /// Field at this instant.
    pub field: ThermalField,
    /// Energy stored in the lumped capacitances over the step that produced
    /// this sample: `Σᵢ Cᵢ·(T_{n+1,i} − T_{n,i})`, joules. Over one backward
    /// Euler step this equals `Δt·(P_injected − P_advected)` up to the
    /// linear-solver residual, which is what the energy-balance tests check.
    pub stored_joules: f64,
}

/// An incremental backward-Euler integrator over one assembled stack.
///
/// Created by [`Stack::transient_stepper`]. The stepper owns the implicit
/// system `(A + C/Δt)` and the node-temperature vector; every [`step`]
/// advances time by `Δt` and returns a [`TransientSample`]. The raw state
/// is exposed through [`state`]/[`set_state`] so a driver can rebuild the
/// stack mid-run (changed channel widths or power maps) and resume from the
/// exact temperatures — the node layout only has to match (`same layer
/// count and grid`), which [`set_state`] validates by length.
///
/// [`step`]: TransientStepper::step
/// [`state`]: TransientStepper::state
/// [`set_state`]: TransientStepper::set_state
#[derive(Debug)]
pub struct TransientStepper<'a> {
    stack: &'a Stack,
    asm: Assembly,
    backend: Backend,
    solver: SolverOptions,
    dt: f64,
    /// Time is tracked as `base_time + steps_taken · Δt` (not accumulated
    /// by repeated addition), so timestamps are exact multiples of `Δt` and
    /// independent of where a driver rebuilds/hands over the stepper.
    base_time: f64,
    steps_taken: usize,
    temps: Vec<f64>,
    /// Reusable scratch buffer (the per-step hot path): the implicit rhs
    /// for backward Euler, the previous temperatures for the exponential
    /// backend's stored-energy bookkeeping.
    rhs: Vec<f64>,
}

/// Per-backend state behind a [`TransientStepper`]. Both backends share the
/// stepper's assembly, temperature vector, and clock, so `state`/`set_state`
/// handovers work identically regardless of kind.
#[derive(Debug)]
enum Backend {
    /// The implicit system `(A + C/Δt)`.
    BackwardEuler { system: CsrMatrix },
    /// The condensed spectral factorization (boxed: it carries dense m×m
    /// storage).
    Exponential(Box<CondensedExp>),
}

impl Stack {
    /// Builds an incremental transient stepper for this stack, starting at
    /// time zero from a uniform temperature (`options.initial`, defaulting
    /// to the stack inlet). `options.steps` is ignored — the caller decides
    /// when to stop stepping.
    ///
    /// # Errors
    ///
    /// [`GridSimError::InvalidTransient`] for a non-positive `dt`.
    pub fn transient_stepper(&self, options: &TransientOptions) -> Result<TransientStepper<'_>> {
        validate_dt(options)?;
        self.stepper_from_assembly(options, self.assemble())
    }

    /// [`Stack::transient_stepper`] routed through an [`AssemblyCache`]:
    /// layers unchanged since the cache's previous stack reuse their
    /// assembled rows, so a rebuild that only modulated the cavity widths
    /// regenerates only the cavity layers (bitwise identical to a full
    /// rebuild — see [`AssemblyCache`]). This is the epoch-loop fast path of
    /// the transient modulation controller.
    ///
    /// # Errors
    ///
    /// [`GridSimError::InvalidTransient`] for a non-positive `dt`.
    pub fn transient_stepper_cached(
        &self,
        options: &TransientOptions,
        cache: &mut AssemblyCache,
    ) -> Result<TransientStepper<'_>> {
        validate_dt(options)?;
        self.stepper_from_assembly(options, cache.assemble(self))
    }

    fn stepper_from_assembly(
        &self,
        options: &TransientOptions,
        asm: Assembly,
    ) -> Result<TransientStepper<'_>> {
        let n = asm.matrix.size();
        let backend =
            match &options.stepper {
                StepperKind::BackwardEuler => Backend::BackwardEuler {
                    system: asm
                        .matrix
                        .plus_diagonal(&asm.capacitance, 1.0 / options.dt_seconds),
                },
                StepperKind::Exponential(eopts) => Backend::Exponential(Box::new(
                    CondensedExp::build(self, &asm, eopts, options.dt_seconds)?,
                )),
            };
        let t0 = options.initial.unwrap_or(self.inlet).si();
        Ok(TransientStepper {
            stack: self,
            asm,
            backend,
            solver: options.solver.clone(),
            dt: options.dt_seconds,
            base_time: 0.0,
            steps_taken: 0,
            temps: vec![t0; n],
            rhs: vec![0.0; n],
        })
    }

    /// Runs a transient simulation from a uniform initial temperature and
    /// returns one sample per step (including the final state).
    ///
    /// # Errors
    ///
    /// * [`GridSimError::InvalidTransient`] for non-positive `dt` or zero
    ///   steps;
    /// * [`GridSimError::NoConvergence`] if an implicit step fails to solve.
    pub fn solve_transient(&self, options: &TransientOptions) -> Result<Vec<TransientSample>> {
        if options.steps == 0 {
            return Err(GridSimError::InvalidTransient {
                what: "steps must be > 0".into(),
            });
        }
        let mut stepper = self.transient_stepper(options)?;
        let mut samples = Vec::with_capacity(options.steps);
        for _ in 0..options.steps {
            samples.push(stepper.step()?);
        }
        Ok(samples)
    }
}

fn validate_dt(options: &TransientOptions) -> Result<()> {
    if !(options.dt_seconds.is_finite() && options.dt_seconds > 0.0) {
        return Err(GridSimError::InvalidTransient {
            what: format!("dt must be positive, got {}", options.dt_seconds),
        });
    }
    Ok(())
}

impl TransientStepper<'_> {
    /// The node-temperature state (kelvin), in assembly order: layers
    /// bottom→top, each `nx × nz` row-major.
    #[must_use]
    pub fn state(&self) -> &[f64] {
        &self.temps
    }

    /// Current simulation time, seconds.
    #[must_use]
    pub fn time_seconds(&self) -> f64 {
        self.base_time + self.steps_taken as f64 * self.dt
    }

    /// Overwrites the node temperatures and clock — the handover point when
    /// a driver swaps stacks mid-run.
    ///
    /// # Errors
    ///
    /// [`GridSimError::InvalidTransient`] when `temps` does not match the
    /// stack's node count or contains non-finite values, or `time_seconds`
    /// is not finite and non-negative.
    pub fn set_state(&mut self, temps: &[f64], time_seconds: f64) -> Result<()> {
        if temps.len() != self.temps.len() {
            return Err(GridSimError::InvalidTransient {
                what: format!(
                    "state has {} nodes, stack has {}",
                    temps.len(),
                    self.temps.len()
                ),
            });
        }
        if temps.iter().any(|t| !t.is_finite()) {
            return Err(GridSimError::InvalidTransient {
                what: "state contains non-finite temperatures".into(),
            });
        }
        if !(time_seconds.is_finite() && time_seconds >= 0.0) {
            return Err(GridSimError::InvalidTransient {
                what: format!("time must be finite and non-negative, got {time_seconds}"),
            });
        }
        self.temps.copy_from_slice(temps);
        self.base_time = time_seconds;
        self.steps_taken = 0;
        Ok(())
    }

    /// Advances one Δt with the configured backend and returns the sampled
    /// field.
    ///
    /// # Errors
    ///
    /// [`GridSimError::NoConvergence`] if the implicit solve fails
    /// (backward Euler only; the exponential backend is solver-free).
    pub fn step(&mut self) -> Result<TransientSample> {
        let stored_joules = match &mut self.backend {
            Backend::BackwardEuler { system } => {
                let inv_dt = 1.0 / self.dt;
                for ((rhs, &p), (&c, &t)) in self
                    .rhs
                    .iter_mut()
                    .zip(&self.asm.rhs)
                    .zip(self.asm.capacitance.iter().zip(&self.temps))
                {
                    *rhs = p + c * inv_dt * t;
                }
                let (next, _stats) =
                    solver::bicgstab(system, &self.rhs, &self.temps, &self.solver)?;
                let stored = self
                    .asm
                    .capacitance
                    .iter()
                    .zip(next.iter().zip(&self.temps))
                    .map(|(c, (t1, t0))| c * (t1 - t0))
                    .sum();
                self.temps = next;
                stored
            }
            Backend::Exponential(exp) => {
                self.rhs.copy_from_slice(&self.temps);
                exp.advance(&mut self.temps, &self.asm.capacitance);
                self.asm
                    .capacitance
                    .iter()
                    .zip(self.temps.iter().zip(&self.rhs))
                    .map(|(c, (t1, t0))| c * (t1 - t0))
                    .sum()
            }
        };
        self.steps_taken += 1;
        Ok(TransientSample {
            time_seconds: self.time_seconds(),
            field: self.stack.field_from_solution(&self.asm, &self.temps),
            stored_joules,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{CavityWidths, StackBuilder};
    use crate::PowerMap;
    use liquamod_units::{HeatFlux, Length};

    fn mm(v: f64) -> Length {
        Length::from_millimeters(v)
    }

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn stack() -> Stack {
        let p = PowerMap::uniform_flux(HeatFlux::from_w_per_cm2(50.0), 4, 8, mm(0.4), mm(0.8));
        StackBuilder::new(mm(0.4), mm(0.8), 4, 8)
            .silicon_layer("bottom", um(50.0))
            .powered_by(p.clone())
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("top", um(50.0))
            .powered_by(p)
            .build()
            .unwrap()
    }

    #[test]
    fn transient_heats_monotonically_toward_steady() {
        let s = stack();
        let steady = s.solve_steady().unwrap();
        let samples = s
            .solve_transient(&TransientOptions {
                dt_seconds: 2e-3,
                steps: 60,
                ..Default::default()
            })
            .unwrap();
        // Peak temperature rises monotonically (pure step response)…
        for w in samples.windows(2) {
            assert!(
                w[1].field.peak_temperature().as_kelvin()
                    >= w[0].field.peak_temperature().as_kelvin() - 1e-9
            );
        }
        // …and approaches the steady state from below.
        let last = samples.last().unwrap();
        let gap = steady.peak_temperature().as_kelvin() - last.field.peak_temperature().as_kelvin();
        assert!(gap >= -1e-6, "transient overshot steady state by {gap}");
        assert!(
            gap < 0.05 * (steady.peak_temperature().as_kelvin() - 300.0),
            "not converged: gap {gap}"
        );
    }

    #[test]
    fn zero_power_transient_stays_at_initial() {
        let s = StackBuilder::new(mm(0.4), mm(0.8), 4, 8)
            .silicon_layer("bottom", um(50.0))
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("top", um(50.0))
            .build()
            .unwrap();
        let samples = s
            .solve_transient(&TransientOptions {
                dt_seconds: 1e-3,
                steps: 5,
                ..Default::default()
            })
            .unwrap();
        for sample in &samples {
            assert!((sample.field.peak_temperature().as_kelvin() - 300.0).abs() < 1e-6);
        }
    }

    #[test]
    fn hot_start_cools_toward_steady() {
        let s = stack();
        let samples = s
            .solve_transient(&TransientOptions {
                dt_seconds: 2e-3,
                steps: 50,
                initial: Some(Temperature::from_kelvin(400.0)),
                ..Default::default()
            })
            .unwrap();
        let first = samples
            .first()
            .unwrap()
            .field
            .peak_temperature()
            .as_kelvin();
        let last = samples.last().unwrap().field.peak_temperature().as_kelvin();
        assert!(
            last < first,
            "overheated stack must cool ({first} → {last})"
        );
        let steady = s.solve_steady().unwrap().peak_temperature().as_kelvin();
        assert!((last - steady).abs() < 0.05 * (400.0 - steady));
    }

    #[test]
    fn rejects_bad_options() {
        let s = stack();
        assert!(matches!(
            s.solve_transient(&TransientOptions {
                dt_seconds: 0.0,
                ..Default::default()
            }),
            Err(GridSimError::InvalidTransient { .. })
        ));
        assert!(matches!(
            s.solve_transient(&TransientOptions {
                steps: 0,
                ..Default::default()
            }),
            Err(GridSimError::InvalidTransient { .. })
        ));
    }

    #[test]
    fn sample_times_are_uniform() {
        let s = stack();
        let samples = s
            .solve_transient(&TransientOptions {
                dt_seconds: 1e-3,
                steps: 3,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(samples.len(), 3);
        assert!((samples[0].time_seconds - 1e-3).abs() < 1e-15);
        assert!((samples[2].time_seconds - 3e-3).abs() < 1e-15);
    }

    #[test]
    fn stepper_matches_one_shot_run() {
        let s = stack();
        let options = TransientOptions {
            dt_seconds: 1e-3,
            steps: 10,
            ..Default::default()
        };
        let samples = s.solve_transient(&options).unwrap();
        let mut stepper = s.transient_stepper(&options).unwrap();
        for sample in &samples {
            let step = stepper.step().unwrap();
            assert_eq!(step.time_seconds.to_bits(), sample.time_seconds.to_bits());
            assert_eq!(step.stored_joules.to_bits(), sample.stored_joules.to_bits());
            for (a, b) in step
                .field
                .layers()
                .iter()
                .zip(sample.field.layers())
                .flat_map(|(x, y)| x.as_kelvin().iter().zip(y.as_kelvin()))
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert!((stepper.time_seconds() - 10e-3).abs() < 1e-15);
    }

    #[test]
    fn state_handover_resumes_exactly() {
        // Stepping 2 + 3 steps through a state handover (to a fresh stepper
        // over the same stack) equals stepping 5 straight.
        let s = stack();
        let options = TransientOptions {
            dt_seconds: 2e-3,
            steps: 5,
            ..Default::default()
        };
        let straight = s.solve_transient(&options).unwrap();
        let mut first = s.transient_stepper(&options).unwrap();
        first.step().unwrap();
        first.step().unwrap();
        let mut second = s.transient_stepper(&options).unwrap();
        second
            .set_state(first.state(), first.time_seconds())
            .unwrap();
        let mut last = None;
        for _ in 0..3 {
            last = Some(second.step().unwrap());
        }
        let resumed = last.unwrap();
        let reference = straight.last().unwrap();
        // Time is base + k·Δt per stepper; across a handover the two float
        // paths to 5·Δt may differ by an ulp, so compare with a tolerance
        // (the temperatures below remain bitwise).
        assert!((resumed.time_seconds - reference.time_seconds).abs() < 1e-12);
        for (a, b) in resumed
            .field
            .layers()
            .iter()
            .zip(reference.field.layers())
            .flat_map(|(x, y)| x.as_kelvin().iter().zip(y.as_kelvin()))
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn set_state_validates() {
        let s = stack();
        let mut stepper = s.transient_stepper(&TransientOptions::default()).unwrap();
        let n = stepper.state().len();
        assert!(matches!(
            stepper.set_state(&vec![300.0; n + 1], 0.0),
            Err(GridSimError::InvalidTransient { .. })
        ));
        assert!(matches!(
            stepper.set_state(&vec![f64::NAN; n], 0.0),
            Err(GridSimError::InvalidTransient { .. })
        ));
        assert!(matches!(
            stepper.set_state(&vec![300.0; n], -1.0),
            Err(GridSimError::InvalidTransient { .. })
        ));
        assert!(stepper.set_state(&vec![310.0; n], 0.5).is_ok());
        assert!((stepper.time_seconds() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn cached_stepper_matches_fresh_stepper_bitwise() {
        // Step 3 + 3 through a widths-only rebuild, once with fresh
        // assemblies and once through an AssemblyCache (which then only
        // regenerates the cavity rows): trajectories must agree bitwise.
        let build = |w_um: f64| {
            let p = PowerMap::uniform_flux(HeatFlux::from_w_per_cm2(50.0), 4, 8, mm(0.4), mm(0.8));
            StackBuilder::new(mm(0.4), mm(0.8), 4, 8)
                .silicon_layer("bottom", um(50.0))
                .powered_by(p.clone())
                .microchannel_cavity(CavityWidths::Uniform(um(w_um)))
                .silicon_layer("top", um(50.0))
                .powered_by(p)
                .build()
                .unwrap()
        };
        let options = TransientOptions {
            dt_seconds: 1e-3,
            ..Default::default()
        };
        let mut cache = AssemblyCache::new();
        let mut run = |cached: bool| -> Vec<f64> {
            let first = build(50.0);
            let mut stepper = if cached {
                first
                    .transient_stepper_cached(&options, &mut cache)
                    .unwrap()
            } else {
                first.transient_stepper(&options).unwrap()
            };
            for _ in 0..3 {
                stepper.step().unwrap();
            }
            let (state, t) = (stepper.state().to_vec(), stepper.time_seconds());
            let second = build(25.0);
            let mut stepper = if cached {
                second
                    .transient_stepper_cached(&options, &mut cache)
                    .unwrap()
            } else {
                second.transient_stepper(&options).unwrap()
            };
            stepper.set_state(&state, t).unwrap();
            for _ in 0..3 {
                stepper.step().unwrap();
            }
            stepper.state().to_vec()
        };
        let fresh = run(false);
        let cached = run(true);
        assert!(cache.is_warm());
        for (a, b) in fresh.iter().zip(&cached) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The stated accuracy gate for the condensed exponential backend: at
    /// exact condensation it integrates the condensed dynamics exactly in
    /// time, so against a fine-Δt reference it must beat backward Euler at
    /// a coarse Δt by a wide margin — here ≤ 0.05 K worst-case peak error
    /// where backward Euler's own truncation error exceeds 1 K.
    #[test]
    fn exponential_tracks_fine_reference_better_than_backward_euler() {
        let s = stack();
        let reference = s
            .solve_transient(&TransientOptions {
                dt_seconds: 1e-5,
                steps: 16_000,
                ..Default::default()
            })
            .unwrap();
        let worst_err = |kind: StepperKind| -> f64 {
            let run = s
                .solve_transient(&TransientOptions {
                    dt_seconds: 2e-3,
                    steps: 80,
                    stepper: kind,
                    ..Default::default()
                })
                .unwrap();
            let mut worst = 0.0f64;
            for sample in &run {
                let k = (sample.time_seconds / 1e-5).round() as usize - 1;
                let err = (sample.field.peak_temperature().as_kelvin()
                    - reference[k].field.peak_temperature().as_kelvin())
                .abs();
                worst = worst.max(err);
            }
            worst
        };
        let be = worst_err(StepperKind::BackwardEuler);
        let exp = worst_err(StepperKind::Exponential(crate::ExponentialOptions {
            x_cells: 4,
            z_cells: 8,
        }));
        assert!(
            exp <= 0.05,
            "exponential backend drifted {exp} K from the fine reference"
        );
        assert!(
            be > 1.0 && exp < be / 10.0,
            "expected BE truncation ≫ exponential error, got BE {be} K, exp {exp} K"
        );
    }

    /// The backward-Euler cross-check the exponential backend is gated on:
    /// every sample's peak within BE's truncation envelope (≤ 2 K at
    /// Δt = 2 ms on this ~10.6 K step response), and the *steady states*
    /// coinciding to 0.01 K — at exact condensation both methods share the
    /// fixed point `A·T = p` exactly.
    #[test]
    fn exponential_and_backward_euler_agree() {
        let s = stack();
        let run = |kind: StepperKind| {
            s.solve_transient(&TransientOptions {
                dt_seconds: 2e-3,
                steps: 80,
                stepper: kind,
                ..Default::default()
            })
            .unwrap()
        };
        let be = run(StepperKind::BackwardEuler);
        let exp = run(StepperKind::Exponential(crate::ExponentialOptions {
            x_cells: 4,
            z_cells: 8,
        }));
        for (a, b) in be.iter().zip(&exp) {
            let diff = (a.field.peak_temperature().as_kelvin()
                - b.field.peak_temperature().as_kelvin())
            .abs();
            assert!(
                diff <= 2.0,
                "t = {}: peaks differ by {diff} K",
                a.time_seconds
            );
        }
        let final_diff = (be.last().unwrap().field.peak_temperature().as_kelvin()
            - exp.last().unwrap().field.peak_temperature().as_kelvin())
        .abs();
        assert!(final_diff <= 0.01, "steady states differ by {final_diff} K");
    }

    #[test]
    fn exponential_state_handover_and_zero_power() {
        // Zero power: the forcing vector is zero and the propagator fixes
        // the uniform inlet state, like BE.
        let s = StackBuilder::new(mm(0.4), mm(0.8), 4, 8)
            .silicon_layer("bottom", um(50.0))
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("top", um(50.0))
            .build()
            .unwrap();
        let options = TransientOptions {
            dt_seconds: 1e-3,
            steps: 5,
            stepper: StepperKind::Exponential(crate::ExponentialOptions::default()),
            ..Default::default()
        };
        for sample in s.solve_transient(&options).unwrap() {
            assert!((sample.field.peak_temperature().as_kelvin() - 300.0).abs() < 1e-9);
        }
        // State handover: 2 + 3 steps through a fresh stepper equals 5
        // straight, bitwise — the exponential backend keeps no hidden state
        // beyond the temperatures.
        let s = stack();
        let options = TransientOptions {
            steps: 5,
            stepper: StepperKind::Exponential(crate::ExponentialOptions::default()),
            ..Default::default()
        };
        let straight = s.solve_transient(&options).unwrap();
        let mut first = s.transient_stepper(&options).unwrap();
        first.step().unwrap();
        first.step().unwrap();
        let mut second = s.transient_stepper(&options).unwrap();
        second
            .set_state(first.state(), first.time_seconds())
            .unwrap();
        let mut last = None;
        for _ in 0..3 {
            last = Some(second.step().unwrap());
        }
        for (a, b) in last
            .unwrap()
            .field
            .layers()
            .iter()
            .zip(straight.last().unwrap().field.layers())
            .flat_map(|(x, y)| x.as_kelvin().iter().zip(y.as_kelvin()))
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn exponential_rejects_zero_cells() {
        let s = stack();
        assert!(matches!(
            s.solve_transient(&TransientOptions {
                stepper: StepperKind::Exponential(crate::ExponentialOptions {
                    x_cells: 0,
                    z_cells: 4,
                }),
                ..Default::default()
            }),
            Err(GridSimError::InvalidTransient { .. })
        ));
    }

    #[test]
    fn per_step_energy_balance() {
        // Backward Euler closes the books every step: the energy stored in
        // the lumped capacitances must equal the injected power minus the
        // advected outflow over the step, up to the linear-solver residual.
        let s = stack();
        let samples = s
            .solve_transient(&TransientOptions {
                dt_seconds: 1e-3,
                steps: 40,
                solver: SolverOptions {
                    tolerance: 1e-13,
                    ..SolverOptions::default()
                },
                ..Default::default()
            })
            .unwrap();
        let dt = 1e-3;
        for sample in &samples {
            let injected = sample.field.total_power().as_watts() * dt;
            let advected = sample.field.advected_power().as_watts() * dt;
            let residual = (injected - advected - sample.stored_joules).abs();
            assert!(
                residual <= 1e-6 * injected.max(1e-12),
                "t = {}: injected {injected} J, advected {advected} J, stored {} J \
                 (residual {residual})",
                sample.time_seconds,
                sample.stored_joules
            );
        }
        // Early on most of the heat goes into the capacitances; near steady
        // state almost everything leaves through the coolant.
        let first = &samples[0];
        let last = samples.last().unwrap();
        assert!(first.stored_joules > 0.5 * first.field.total_power().as_watts() * dt);
        assert!(last.stored_joules < 0.1 * last.field.total_power().as_watts() * dt);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::stack::{CavityWidths, StackBuilder};
    use crate::{ExponentialOptions, PowerMap};
    use liquamod_units::{HeatFlux, Length};
    use proptest::prelude::*;

    fn scaled_stack(scale: f64) -> Stack {
        let mm = |v| Length::from_millimeters(v);
        let um = |v| Length::from_micrometers(v);
        let p = PowerMap::uniform_flux(
            HeatFlux::from_w_per_cm2(50.0 * scale),
            4,
            8,
            mm(0.4),
            mm(0.8),
        );
        StackBuilder::new(mm(0.4), mm(0.8), 4, 8)
            .silicon_layer("bottom", um(50.0))
            .powered_by(p.clone())
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("top", um(50.0))
            .powered_by(p)
            .build()
            .unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Random non-negative power traces (piecewise-constant phases,
        /// state handed over at each phase change): the exponential and
        /// backward-Euler backends track each other within backward
        /// Euler's truncation envelope at Δt = 1 ms — 25 % of the largest
        /// rise either backend has seen so far, plus 0.1 K. The envelope
        /// is set by BE's first-step damping error (measured ~16 % of the
        /// one-step rise on this stack; ~9 % over a full step response),
        /// not by the exponential backend, which is time-exact at this
        /// condensation.
        #[test]
        fn exponential_tracks_backward_euler_on_random_traces(
            scales in proptest::collection::vec(0.0f64..2.0, 2..5),
        ) {
            let run = |kind: StepperKind| -> Vec<f64> {
                let mut peaks = Vec::new();
                let mut state: Option<(Vec<f64>, f64)> = None;
                for &scale in &scales {
                    let stack = scaled_stack(scale);
                    let options = TransientOptions {
                        dt_seconds: 1e-3,
                        stepper: kind.clone(),
                        ..Default::default()
                    };
                    let mut stepper = stack.transient_stepper(&options).unwrap();
                    if let Some((temps, time)) = &state {
                        stepper.set_state(temps, *time).unwrap();
                    }
                    for _ in 0..10 {
                        let sample = stepper.step().unwrap();
                        peaks.push(sample.field.peak_temperature().as_kelvin());
                    }
                    state = Some((stepper.state().to_vec(), stepper.time_seconds()));
                }
                peaks
            };
            let be = run(StepperKind::BackwardEuler);
            let exp = run(StepperKind::Exponential(ExponentialOptions {
                x_cells: 4,
                z_cells: 8,
            }));
            let mut max_rise = 0.0f64;
            for (step, (a, b)) in be.iter().zip(&exp).enumerate() {
                max_rise = max_rise.max(a - 300.0).max(b - 300.0);
                let bound = 0.25 * max_rise + 0.1;
                let diff = (a - b).abs();
                prop_assert!(
                    diff <= bound,
                    "step {step}: peaks {a} / {b} differ by {diff} K (bound {bound} K)"
                );
            }
        }
    }
}
