//! Bitwise-exact numeric snapshot serialization for in-flight simulation
//! state.
//!
//! The workspace's golden-fixture convention (see the core crate's
//! `TransientOutcome::golden_json` and `tests/golden_transient.rs`)
//! serializes every number with Rust's shortest round-trip float formatting
//! (`format!("{v:e}")`) into flat JSON arrays, so fixtures diff numerically
//! without a JSON dependency and parse back to the *same bits*. This module
//! factors that format into reusable render/parse halves so snapshot/restore
//! of transient state — the stepper's node-temperature vector and anything
//! layered on top of it, like the serve layer's session snapshots — can
//! cross a process restart without perturbing the trajectory.
//!
//! The guarantee both halves uphold: for any finite `v: f64`,
//! `parse(render(v)) == v` **bitwise** (including negative zero and
//! subnormals), because `{:e}` emits the shortest decimal that uniquely
//! identifies the bit pattern and `str::parse::<f64>` is correctly rounded.

use crate::error::GridSimError;
use crate::Result;

/// Renders one number in the golden format (shortest round-trip,
/// exponential notation): `1.5e-3`, `-0e0`, `3.0000000000000004e0`.
#[must_use]
pub fn render_number(v: f64) -> String {
    format!("{v:e}")
}

/// Renders a flat JSON array of numbers in the golden format:
/// `[1e0, 2.5e-1]`; an empty iterator renders `[]`.
#[must_use]
pub fn render_array(values: impl IntoIterator<Item = f64>) -> String {
    let items: Vec<String> = values.into_iter().map(render_number).collect();
    format!("[{}]", items.join(", "))
}

/// Appends `  "key": <value>,\n` (or without the trailing comma when
/// `last`) to a record under construction — the shared shape of every
/// scalar field in a snapshot document.
pub fn push_scalar(out: &mut String, key: &str, value: f64, last: bool) {
    let sep = if last { "" } else { "," };
    out.push_str(&format!("  \"{key}\": {}{sep}\n", render_number(value)));
}

/// Appends `  "key": [..],\n` (or without the trailing comma when `last`)
/// to a record under construction.
pub fn push_array(out: &mut String, key: &str, values: impl IntoIterator<Item = f64>, last: bool) {
    let sep = if last { "" } else { "," };
    out.push_str(&format!("  \"{key}\": {}{sep}\n", render_array(values)));
}

/// The raw text of `key`'s value in a flat snapshot document: everything
/// between the first `"key":` and the end of its scalar or `[...]` array.
fn value_text<'a>(json: &'a str, key: &str) -> Result<&'a str> {
    let needle = format!("\"{key}\"");
    let at = json
        .find(&needle)
        .ok_or_else(|| GridSimError::InvalidSnapshot {
            what: format!("missing key '{key}'"),
        })?;
    let rest = &json[at + needle.len()..];
    let rest = rest
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| GridSimError::InvalidSnapshot {
            what: format!("key '{key}' is not followed by ':'"),
        })?
        .trim_start();
    if let Some(body) = rest.strip_prefix('[') {
        let end = body
            .find(']')
            .ok_or_else(|| GridSimError::InvalidSnapshot {
                what: format!("unterminated array for key '{key}'"),
            })?;
        Ok(&body[..end])
    } else {
        let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
        Ok(&rest[..end])
    }
}

/// Parses one number, surfacing the offending text on failure.
fn parse_one(text: &str, key: &str) -> Result<f64> {
    text.trim()
        .parse::<f64>()
        .map_err(|_| GridSimError::InvalidSnapshot {
            what: format!("key '{key}': '{}' is not a number", text.trim()),
        })
}

/// Reads a scalar field back from a snapshot document, bitwise.
///
/// # Errors
///
/// [`GridSimError::InvalidSnapshot`] when the key is missing or its value
/// does not parse as a number.
pub fn parse_scalar(json: &str, key: &str) -> Result<f64> {
    parse_one(value_text(json, key)?, key)
}

/// Reads a flat array field back from a snapshot document, bitwise.
///
/// # Errors
///
/// [`GridSimError::InvalidSnapshot`] when the key is missing, the value is
/// not an array, or any element does not parse as a number.
pub fn parse_array(json: &str, key: &str) -> Result<Vec<f64>> {
    let body = value_text(json, key)?;
    if body.trim().is_empty() {
        return Ok(Vec::new());
    }
    body.split(',').map(|item| parse_one(item, key)).collect()
}

/// [`parse_array`] for fields that hold counts or enum codes: every element
/// must round-trip exactly through `usize`.
///
/// # Errors
///
/// [`GridSimError::InvalidSnapshot`] when an element is not a non-negative
/// integer.
pub fn parse_usize_array(json: &str, key: &str) -> Result<Vec<usize>> {
    parse_array(json, key)?
        .into_iter()
        .map(|v| {
            if v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= usize::MAX as f64 {
                Ok(v as usize)
            } else {
                Err(GridSimError::InvalidSnapshot {
                    what: format!("key '{key}': {v} is not a non-negative integer"),
                })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip_bitwise() {
        let cases = [
            0.0,
            -0.0,
            1.0,
            0.1,
            1.0 / 3.0,
            -3.5e-2,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 8.0, // subnormal
            f64::MAX,
            301.15 + 1e-13,
            2e-3 * 7.0,
        ];
        for v in cases {
            let mut out = String::new();
            push_scalar(&mut out, "v", v, true);
            let back = parse_scalar(&out, "v").unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v:?} via {out:?}");
        }
        let rendered = render_array(cases.iter().copied());
        let doc = format!("{{\n  \"vs\": {rendered}\n}}\n");
        let back = parse_array(&doc, "vs").unwrap();
        assert_eq!(back.len(), cases.len());
        for (b, v) in back.iter().zip(&cases) {
            assert_eq!(b.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn empty_arrays_and_field_order() {
        let mut out = String::from("{\n");
        push_array(&mut out, "empty", [], false);
        push_array(&mut out, "pair", [1.5, -2.0], false);
        push_scalar(&mut out, "tail", 4.25, true);
        out.push_str("}\n");
        assert!(parse_array(&out, "empty").unwrap().is_empty());
        assert_eq!(parse_array(&out, "pair").unwrap(), vec![1.5, -2.0]);
        assert_eq!(parse_scalar(&out, "tail").unwrap(), 4.25);
    }

    #[test]
    fn usize_arrays_reject_non_integers() {
        let doc = "{\n  \"counts\": [0e0, 3e0, 1.2e1]\n}\n";
        assert_eq!(parse_usize_array(doc, "counts").unwrap(), vec![0, 3, 12]);
        let bad = "{\n  \"counts\": [1.5e0]\n}\n";
        assert!(matches!(
            parse_usize_array(bad, "counts"),
            Err(GridSimError::InvalidSnapshot { .. })
        ));
        let negative = "{\n  \"counts\": [-1e0]\n}\n";
        assert!(parse_usize_array(negative, "counts").is_err());
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        assert!(matches!(
            parse_scalar("{}", "missing"),
            Err(GridSimError::InvalidSnapshot { .. })
        ));
        assert!(parse_scalar("{\n  \"k\" 1e0\n}", "k").is_err());
        assert!(parse_array("{\n  \"k\": [1e0", "k").is_err());
        assert!(parse_scalar("{\n  \"k\": nope\n}", "k").is_err());
    }

    #[test]
    fn scalar_at_document_end_without_newline() {
        assert_eq!(parse_scalar("{\"k\": 2e0}", "k").unwrap(), 2.0);
        assert_eq!(parse_scalar("\"k\": 2e0", "k").unwrap(), 2.0);
    }
}
