//! Terminal-friendly rendering of thermal maps.
//!
//! The paper's Fig. 1 and Fig. 9 are colour thermal maps; in a terminal
//! reproduction we render the same data as a shade ramp (cold → hot), plus a
//! numeric scale, so the map *shape* (inlet-to-outlet ramp, hotspot blobs)
//! is visible in CI logs and bench output.

use crate::LayerField;
use liquamod_units::Temperature;

/// Shade ramp from cold to hot.
const RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Renders one layer as an ASCII heat map. Rows run inlet (top) to outlet
/// (bottom) unless `flow_up` is set, in which case the flow direction points
/// up the page like the paper's figures.
///
/// The temperature scale is fixed by `t_min`/`t_max` so that several maps
/// (e.g. Fig. 9's min/optimal/max triplet) can share one scale.
pub fn render_layer(
    layer: &LayerField,
    t_min: Temperature,
    t_max: Temperature,
    flow_up: bool,
) -> String {
    let (nx, nz) = layer.dims();
    let lo = t_min.as_kelvin();
    let hi = t_max.as_kelvin();
    let span = (hi - lo).max(1e-9);
    let mut out = String::with_capacity((nx + 3) * nz);
    let rows: Vec<usize> = if flow_up {
        (0..nz).rev().collect()
    } else {
        (0..nz).collect()
    };
    for j in rows {
        out.push('|');
        for i in 0..nx {
            let t = layer.cell(i, j).as_kelvin();
            let f = ((t - lo) / span).clamp(0.0, 1.0);
            let idx = ((f * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx]);
        }
        out.push('|');
        out.push('\n');
    }
    out
}

/// Renders a layer together with a numeric legend:
/// the scale bounds and the layer's own extremes.
pub fn render_layer_with_legend(
    layer: &LayerField,
    t_min: Temperature,
    t_max: Temperature,
    flow_up: bool,
) -> String {
    let map = render_layer(layer, t_min, t_max, flow_up);
    format!(
        "{}scale [{:.1} .. {:.1}] degC   layer '{}' range [{:.1} .. {:.1}] degC{}\n",
        map,
        t_min.as_celsius(),
        t_max.as_celsius(),
        layer.name(),
        layer.min().as_celsius(),
        layer.max().as_celsius(),
        if flow_up {
            "   (flow: bottom -> top)"
        } else {
            "   (flow: top -> bottom)"
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{CavityWidths, StackBuilder};
    use crate::PowerMap;
    use liquamod_units::{HeatFlux, Length};

    fn field_layer() -> LayerField {
        let mm = Length::from_millimeters;
        let um = Length::from_micrometers;
        let p = PowerMap::uniform_flux(HeatFlux::from_w_per_cm2(50.0), 4, 6, mm(0.4), mm(0.6));
        let stack = StackBuilder::new(mm(0.4), mm(0.6), 4, 6)
            .silicon_layer("bottom", um(50.0))
            .powered_by(p.clone())
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("top", um(50.0))
            .powered_by(p)
            .build()
            .unwrap();
        stack
            .solve_steady()
            .unwrap()
            .layer_by_name("top")
            .unwrap()
            .clone()
    }

    #[test]
    fn renders_expected_shape() {
        let layer = field_layer();
        let s = render_layer(&layer, layer.min(), layer.max(), false);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines
            .iter()
            .all(|l| l.len() == 6 && l.starts_with('|') && l.ends_with('|')));
    }

    #[test]
    fn hot_outlet_renders_denser_glyphs() {
        let layer = field_layer();
        let s = render_layer(&layer, layer.min(), layer.max(), false);
        let lines: Vec<&str> = s.lines().collect();
        let glyph_rank = |c: char| RAMP.iter().position(|&r| r == c).unwrap_or(0);
        let first: usize = lines[0].chars().map(glyph_rank).sum();
        let last: usize = lines[5].chars().map(glyph_rank).sum();
        assert!(
            last > first,
            "outlet row should render hotter than inlet row"
        );
    }

    #[test]
    fn flow_up_flips_rows() {
        let layer = field_layer();
        let down = render_layer(&layer, layer.min(), layer.max(), false);
        let up = render_layer(&layer, layer.min(), layer.max(), true);
        let down_lines: Vec<&str> = down.lines().collect();
        let up_lines: Vec<&str> = up.lines().collect();
        assert_eq!(down_lines.first(), up_lines.last());
        assert_eq!(down_lines.last(), up_lines.first());
    }

    #[test]
    fn legend_mentions_scale_and_name() {
        let layer = field_layer();
        let s = render_layer_with_legend(
            &layer,
            Temperature::from_celsius(30.0),
            Temperature::from_celsius(55.0),
            true,
        );
        assert!(s.contains("30.0 .. 55.0"));
        assert!(s.contains("top"));
        assert!(s.contains("bottom -> top"));
    }

    #[test]
    fn degenerate_scale_does_not_panic() {
        let layer = field_layer();
        let t = Temperature::from_kelvin(300.0);
        let s = render_layer(&layer, t, t, false);
        assert!(!s.is_empty());
    }
}
