//! Minimal sparse-matrix support: triplet assembly into CSR.

/// Coordinate-format accumulator used during assembly; duplicate entries sum.
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    n: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `n × n` accumulator.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            entries: Vec::new(),
        }
    }

    /// Matrix dimension.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Adds `v` at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n, "triplet index out of range");
        if v != 0.0 {
            self.entries.push((i, j, v));
        }
    }

    /// Compresses into CSR form, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let n = self.n;
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|a| (a.0, a.1));
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        row_ptr.push(0);
        let mut row = 0usize;
        for (i, j, v) in sorted {
            while row < i {
                row_ptr.push(col_idx.len());
                row += 1;
            }
            if let (Some(&last_j), Some(last_v)) = (col_idx.last(), values.last_mut()) {
                if col_idx.len() > row_ptr[row] && last_j == j {
                    *last_v += v;
                    continue;
                }
            }
            col_idx.push(j);
            values.push(v);
        }
        while row < n {
            row_ptr.push(col_idx.len());
            row += 1;
        }
        CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Matrix dimension.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `y.len()` differ from the matrix size.
    pub fn mul_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                s += self.values[k] * x[self.col_idx[k]];
            }
            *yi = s;
        }
    }

    /// `A·x` as a fresh vector.
    #[must_use]
    pub fn mul(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_into(x, &mut y);
        y
    }

    /// Diagonal entries (zero when absent) — the Jacobi preconditioner.
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for (i, di) in d.iter_mut().enumerate() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] == i {
                    *di = self.values[k];
                }
            }
        }
        d
    }

    /// Index range of row `i`'s stored entries, for use with
    /// [`CsrMatrix::col_at`] / [`CsrMatrix::value_at`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        assert!(i < self.n, "row out of range");
        self.row_ptr[i]..self.row_ptr[i + 1]
    }

    /// Column index of stored entry `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn col_at(&self, k: usize) -> usize {
        self.col_idx[k]
    }

    /// Value of stored entry `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn value_at(&self, k: usize) -> f64 {
        self.values[k]
    }

    /// Reads `A[i, j]` (zero when not stored).
    ///
    /// Column indices within a row are sorted (see [`TripletMatrix::to_csr`]),
    /// so the lookup is a binary search: `O(log nnz_row)` instead of a linear
    /// scan — the difference matters for the dense-ish rows that boundary
    /// assembly produces.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        let row = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
        match row.binary_search(&j) {
            Ok(k) => self.values[self.row_ptr[i] + k],
            Err(_) => 0.0,
        }
    }

    /// Returns a copy with `scale·D` added to the diagonal, where `D` is the
    /// supplied per-row values (backward-Euler system construction:
    /// `A + C/Δt`).
    ///
    /// # Panics
    ///
    /// Panics if `d.len()` differs from the matrix size.
    #[must_use]
    pub fn plus_diagonal(&self, d: &[f64], scale: f64) -> CsrMatrix {
        assert_eq!(d.len(), self.n);
        let mut t = TripletMatrix::new(self.n);
        for (i, &di) in d.iter().enumerate() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                t.add(i, self.col_idx[k], self.values[k]);
            }
            t.add(i, i, di * scale);
        }
        t.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sum_duplicates() {
        let mut t = TripletMatrix::new(3);
        t.add(0, 0, 1.0);
        t.add(0, 0, 2.0);
        t.add(2, 1, -1.0);
        let m = t.to_csr();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(2, 1), -1.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut t = TripletMatrix::new(4);
        t.add(3, 0, 5.0);
        let m = t.to_csr();
        assert_eq!(m.get(3, 0), 5.0);
        assert_eq!(m.mul(&[1.0, 0.0, 0.0, 0.0]), vec![0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn mat_vec() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 2.0);
        t.add(0, 1, 1.0);
        t.add(1, 0, -1.0);
        t.add(1, 1, 3.0);
        let m = t.to_csr();
        assert_eq!(m.mul(&[1.0, 2.0]), vec![4.0, 5.0]);
    }

    #[test]
    fn diagonal_extraction() {
        let mut t = TripletMatrix::new(3);
        t.add(0, 0, 2.0);
        t.add(1, 2, 1.0);
        t.add(2, 2, 7.0);
        let m = t.to_csr();
        assert_eq!(m.diagonal(), vec![2.0, 0.0, 7.0]);
    }

    #[test]
    fn get_binary_search_hits_every_stored_column() {
        // A wide row with scattered columns: every stored entry is found and
        // every gap reads zero (exercises both binary-search arms).
        let n = 64;
        let mut t = TripletMatrix::new(n);
        for j in (1..n).step_by(3) {
            t.add(5, j, j as f64);
        }
        let m = t.to_csr();
        for j in 0..n {
            let expect = if j >= 1 && (j - 1) % 3 == 0 {
                j as f64
            } else {
                0.0
            };
            assert_eq!(m.get(5, j), expect, "column {j}");
        }
    }

    #[test]
    fn zero_entries_are_dropped() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 1, 0.0);
        assert_eq!(t.to_csr().nnz(), 0);
    }

    #[test]
    fn plus_diagonal() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 1.0);
        t.add(1, 0, 2.0);
        let m = t.to_csr().plus_diagonal(&[10.0, 20.0], 0.5);
        assert_eq!(m.get(0, 0), 6.0);
        assert_eq!(m.get(1, 1), 10.0);
        assert_eq!(m.get(1, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn triplet_bounds_checked() {
        let mut t = TripletMatrix::new(2);
        t.add(2, 0, 1.0);
    }
}
