//! Minimal sparse-matrix support: triplet assembly into CSR.

/// Coordinate-format accumulator used during assembly; duplicate entries sum.
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    n: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `n × n` accumulator.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            entries: Vec::new(),
        }
    }

    /// Matrix dimension.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Adds `v` at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n, "triplet index out of range");
        if v != 0.0 {
            self.entries.push((i, j, v));
        }
    }

    /// Compresses into CSR form, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        self.to_csr_with_pattern().0
    }

    /// Compresses into CSR form and additionally returns the
    /// [`CsrPattern`] mapping this triplet sequence onto the compressed
    /// layout, so later value-only refreshes can skip the sort entirely.
    ///
    /// The matrix is bit-identical to [`TripletMatrix::to_csr`]: the sort is
    /// stable, so duplicates at the same `(i, j)` sum in emission order.
    pub fn to_csr_with_pattern(&self) -> (CsrMatrix, CsrPattern) {
        let n = self.n;
        // Stable sort over *indices* so the original emission position of
        // every entry is known when its compressed slot is assigned.
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&k| (self.entries[k].0, self.entries[k].1));
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        let mut scatter = vec![0usize; self.entries.len()];
        row_ptr.push(0);
        let mut row = 0usize;
        for &k in &order {
            let (i, j, v) = self.entries[k];
            while row < i {
                row_ptr.push(col_idx.len());
                row += 1;
            }
            if let (Some(&last_j), Some(last_v)) = (col_idx.last(), values.last_mut()) {
                if col_idx.len() > row_ptr[row] && last_j == j {
                    *last_v += v;
                    scatter[k] = values.len() - 1;
                    continue;
                }
            }
            scatter[k] = values.len();
            col_idx.push(j);
            values.push(v);
        }
        while row < n {
            row_ptr.push(col_idx.len());
            row += 1;
        }
        let emit = self.entries.iter().map(|&(i, j, _)| (i, j)).collect();
        let matrix = CsrMatrix {
            n,
            row_ptr: row_ptr.into(),
            col_idx: col_idx.into(),
            values,
        };
        let pattern = CsrPattern {
            matrix: CsrMatrix {
                n: matrix.n,
                row_ptr: matrix.row_ptr.clone(),
                col_idx: matrix.col_idx.clone(),
                values: Vec::new(),
            },
            emit,
            scatter,
        };
        (matrix, pattern)
    }
}

/// A frozen sparsity pattern: the symbolic outcome of one
/// [`TripletMatrix::to_csr_with_pattern`] compression.
///
/// It remembers the emission-order `(i, j)` sequence of the triplets it was
/// built from and, for each emission, the compressed value slot it summed
/// into. [`CsrPattern::refresh`] replays a *new* triplet sequence with the
/// same `(i, j)` structure straight into a matrix sharing the cached
/// `row_ptr`/`col_idx` arrays — no sort, no symbolic work, and the only
/// allocation is the fresh value vector. Because the stable sort in
/// [`TripletMatrix::to_csr`] sums duplicates in emission order, the replay
/// is **bitwise identical** to a full recompression.
#[derive(Debug, Clone)]
pub struct CsrPattern {
    /// Structure-only template; `values` are all zero and are cloned as the
    /// scratch for each refresh (`row_ptr`/`col_idx` are shared via `Arc`).
    matrix: CsrMatrix,
    /// `(i, j)` of every emitted (nonzero) triplet, in emission order.
    emit: Vec<(usize, usize)>,
    /// Emission index → compressed value slot.
    scatter: Vec<usize>,
}

impl CsrPattern {
    /// Number of triplet emissions the pattern was built from.
    #[must_use]
    pub fn emissions(&self) -> usize {
        self.emit.len()
    }

    /// Whether `(i, j)` matches the recorded emission at position `k`.
    #[must_use]
    pub fn emission_matches(&self, k: usize, i: usize, j: usize) -> bool {
        self.emit.get(k) == Some(&(i, j))
    }

    /// Starts a values-only refresh; feed it every triplet in emission order.
    #[must_use]
    pub fn refresh(&self) -> CsrRefresh<'_> {
        CsrRefresh {
            pattern: self,
            values: vec![0.0; self.matrix.col_idx.len()],
            cursor: 0,
        }
    }
}

/// In-flight values-only refresh over a [`CsrPattern`]; see
/// [`CsrPattern::refresh`].
#[derive(Debug)]
pub struct CsrRefresh<'a> {
    pattern: &'a CsrPattern,
    values: Vec<f64>,
    cursor: usize,
}

impl CsrRefresh<'_> {
    /// Accumulates the next emitted triplet. Exact zeros are skipped without
    /// consuming an emission (mirroring [`TripletMatrix::add`]). Returns
    /// `false` — leaving the refresh unusable — when `(i, j)` deviates from
    /// the recorded pattern; the caller must fall back to a full symbolic
    /// rebuild.
    #[must_use]
    pub fn push(&mut self, i: usize, j: usize, v: f64) -> bool {
        if v == 0.0 {
            return true;
        }
        if !self.pattern.emission_matches(self.cursor, i, j) {
            return false;
        }
        self.values[self.pattern.scatter[self.cursor]] += v;
        self.cursor += 1;
        true
    }

    /// Replays a run of triplets known to be structurally unchanged since
    /// the pattern was recorded, summing their values without coordinate
    /// checks (the fast path for cached, already-validated blocks). Exact
    /// zeros are skipped like in [`CsrRefresh::push`]. Returns `false` if
    /// the replay overruns the recorded emission count.
    #[must_use]
    pub fn push_trusted(&mut self, entries: &[(usize, usize, f64)]) -> bool {
        for &(_, _, v) in entries {
            if v == 0.0 {
                continue;
            }
            if self.cursor >= self.pattern.scatter.len() {
                return false;
            }
            self.values[self.pattern.scatter[self.cursor]] += v;
            self.cursor += 1;
        }
        true
    }

    /// Finishes the refresh. Returns `None` when the number of emissions
    /// differs from the pattern (structural change).
    #[must_use]
    pub fn finish(self) -> Option<CsrMatrix> {
        if self.cursor != self.pattern.scatter.len() {
            return None;
        }
        Some(CsrMatrix {
            n: self.pattern.matrix.n,
            row_ptr: self.pattern.matrix.row_ptr.clone(),
            col_idx: self.pattern.matrix.col_idx.clone(),
            values: self.values,
        })
    }
}

/// Compressed-sparse-row matrix.
///
/// The structural arrays (`row_ptr`, `col_idx`) are immutable after
/// construction and shared (`Arc`) between clones, so matrices refreshed
/// through a [`CsrPattern`] reuse the symbolic layout without copying it.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: std::sync::Arc<[usize]>,
    col_idx: std::sync::Arc<[usize]>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Matrix dimension.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `y.len()` differ from the matrix size.
    pub fn mul_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                s += self.values[k] * x[self.col_idx[k]];
            }
            *yi = s;
        }
    }

    /// `A·x` as a fresh vector.
    #[must_use]
    pub fn mul(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_into(x, &mut y);
        y
    }

    /// Diagonal entries (zero when absent) — the Jacobi preconditioner.
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for (i, di) in d.iter_mut().enumerate() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] == i {
                    *di = self.values[k];
                }
            }
        }
        d
    }

    /// Index range of row `i`'s stored entries, for use with
    /// [`CsrMatrix::col_at`] / [`CsrMatrix::value_at`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        assert!(i < self.n, "row out of range");
        self.row_ptr[i]..self.row_ptr[i + 1]
    }

    /// Column index of stored entry `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn col_at(&self, k: usize) -> usize {
        self.col_idx[k]
    }

    /// Value of stored entry `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn value_at(&self, k: usize) -> f64 {
        self.values[k]
    }

    /// Reads `A[i, j]` (zero when not stored).
    ///
    /// Column indices within a row are sorted (see [`TripletMatrix::to_csr`]),
    /// so the lookup is a binary search: `O(log nnz_row)` instead of a linear
    /// scan — the difference matters for the dense-ish rows that boundary
    /// assembly produces.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        let row = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
        match row.binary_search(&j) {
            Ok(k) => self.values[self.row_ptr[i] + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates row `i`'s stored `(column, value)` entries in column order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.n, "index out of range");
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&j, &v)| (j, v))
    }

    /// Returns a copy with `scale·D` added to the diagonal, where `D` is the
    /// supplied per-row values (backward-Euler system construction:
    /// `A + C/Δt`).
    ///
    /// The merge is direct — `O(nnz)`, no triplet round-trip — and bitwise
    /// identical to re-accumulating through a [`TripletMatrix`]: within a
    /// row the stored entries precede the diagonal increment in emission
    /// order, so a stable recompression would sum them exactly as the
    /// in-place `aᵢᵢ + dᵢ·scale` here does. Exact-zero stored entries and
    /// exact-zero diagonal increments are dropped, matching
    /// [`TripletMatrix::add`].
    ///
    /// # Panics
    ///
    /// Panics if `d.len()` differs from the matrix size.
    #[must_use]
    pub fn plus_diagonal(&self, d: &[f64], scale: f64) -> CsrMatrix {
        assert_eq!(d.len(), self.n);
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        let mut col_idx = Vec::with_capacity(self.nnz() + self.n);
        let mut values = Vec::with_capacity(self.nnz() + self.n);
        row_ptr.push(0);
        for (i, &di) in d.iter().enumerate() {
            let add = di * scale;
            // Nothing to insert when the increment is an exact zero (the
            // triplet path would have dropped it).
            let mut placed = add == 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                let v = self.values[k];
                if v == 0.0 {
                    continue;
                }
                if !placed && j >= i {
                    placed = true;
                    if j == i {
                        col_idx.push(j);
                        values.push(v + add);
                        continue;
                    }
                    col_idx.push(i);
                    values.push(add);
                }
                col_idx.push(j);
                values.push(v);
            }
            if !placed {
                col_idx.push(i);
                values.push(add);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            n: self.n,
            row_ptr: row_ptr.into(),
            col_idx: col_idx.into(),
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sum_duplicates() {
        let mut t = TripletMatrix::new(3);
        t.add(0, 0, 1.0);
        t.add(0, 0, 2.0);
        t.add(2, 1, -1.0);
        let m = t.to_csr();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(2, 1), -1.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut t = TripletMatrix::new(4);
        t.add(3, 0, 5.0);
        let m = t.to_csr();
        assert_eq!(m.get(3, 0), 5.0);
        assert_eq!(m.mul(&[1.0, 0.0, 0.0, 0.0]), vec![0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn mat_vec() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 2.0);
        t.add(0, 1, 1.0);
        t.add(1, 0, -1.0);
        t.add(1, 1, 3.0);
        let m = t.to_csr();
        assert_eq!(m.mul(&[1.0, 2.0]), vec![4.0, 5.0]);
    }

    #[test]
    fn diagonal_extraction() {
        let mut t = TripletMatrix::new(3);
        t.add(0, 0, 2.0);
        t.add(1, 2, 1.0);
        t.add(2, 2, 7.0);
        let m = t.to_csr();
        assert_eq!(m.diagonal(), vec![2.0, 0.0, 7.0]);
    }

    #[test]
    fn get_binary_search_hits_every_stored_column() {
        // A wide row with scattered columns: every stored entry is found and
        // every gap reads zero (exercises both binary-search arms).
        let n = 64;
        let mut t = TripletMatrix::new(n);
        for j in (1..n).step_by(3) {
            t.add(5, j, j as f64);
        }
        let m = t.to_csr();
        for j in 0..n {
            let expect = if j >= 1 && (j - 1) % 3 == 0 {
                j as f64
            } else {
                0.0
            };
            assert_eq!(m.get(5, j), expect, "column {j}");
        }
    }

    #[test]
    fn zero_entries_are_dropped() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 1, 0.0);
        assert_eq!(t.to_csr().nnz(), 0);
    }

    #[test]
    fn plus_diagonal() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 1.0);
        t.add(1, 0, 2.0);
        let m = t.to_csr().plus_diagonal(&[10.0, 20.0], 0.5);
        assert_eq!(m.get(0, 0), 6.0);
        assert_eq!(m.get(1, 1), 10.0);
        assert_eq!(m.get(1, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn triplet_bounds_checked() {
        let mut t = TripletMatrix::new(2);
        t.add(2, 0, 1.0);
    }

    /// A messy matrix: duplicates, empty rows, rows with and without
    /// diagonals, and an entry pair summing to exactly zero.
    fn messy() -> TripletMatrix {
        let mut t = TripletMatrix::new(5);
        t.add(0, 2, 1.5);
        t.add(0, 0, 2.0);
        t.add(0, 2, -1.5); // duplicate summing to exact zero
        t.add(2, 1, 3.0);
        t.add(2, 4, -1.0);
        t.add(2, 1, 0.25);
        t.add(4, 4, 7.0);
        t.add(3, 0, 1.0);
        t
    }

    /// Reference implementation of `plus_diagonal` through the triplet path
    /// (the pre-optimization behaviour).
    fn plus_diagonal_reference(m: &CsrMatrix, d: &[f64], scale: f64) -> CsrMatrix {
        let mut t = TripletMatrix::new(m.size());
        for (i, &di) in d.iter().enumerate().take(m.size()) {
            for k in m.row_range(i) {
                t.add(i, m.col_at(k), m.value_at(k));
            }
            t.add(i, i, di * scale);
        }
        t.to_csr()
    }

    fn assert_bitwise_equal(a: &CsrMatrix, b: &CsrMatrix) {
        assert_eq!(a.size(), b.size());
        assert_eq!(a.nnz(), b.nnz(), "nnz differ");
        for i in 0..a.size() {
            assert_eq!(a.row_range(i), b.row_range(i), "row {i}");
            for k in a.row_range(i) {
                assert_eq!(a.col_at(k), b.col_at(k), "col at {k}");
                assert_eq!(
                    a.value_at(k).to_bits(),
                    b.value_at(k).to_bits(),
                    "value at {k}"
                );
            }
        }
    }

    #[test]
    fn plus_diagonal_direct_merge_matches_triplet_path_bitwise() {
        let m = messy().to_csr();
        for (d, scale) in [
            (vec![10.0, 20.0, 30.0, 40.0, 50.0], 0.5),
            (vec![0.0, 1.0, 0.0, 2.0, 0.0], 1.0 / 3.0),
            (vec![0.0; 5], 1.0),
            (vec![1e-300, 2.0, 3.0, 4.0, 5.0], 1e7),
        ] {
            let fast = m.plus_diagonal(&d, scale);
            let reference = plus_diagonal_reference(&m, &d, scale);
            assert_bitwise_equal(&fast, &reference);
        }
    }

    #[test]
    fn pattern_refresh_is_bitwise_identical_to_recompression() {
        let t = messy();
        let (first, pattern) = t.to_csr_with_pattern();
        assert_bitwise_equal(&first, &t.to_csr());
        // New values, same structure: refresh must equal a fresh to_csr.
        let mut t2 = TripletMatrix::new(5);
        let mut refresh = pattern.refresh();
        for (k, &(i, j, _)) in t.entries.iter().enumerate() {
            let v = (k as f64 + 1.0) * 0.37 - 1.0;
            t2.add(i, j, v);
            assert!(refresh.push(i, j, v), "emission {k} should match");
        }
        let refreshed = refresh.finish().expect("emission counts match");
        assert_bitwise_equal(&refreshed, &t2.to_csr());
    }

    #[test]
    fn pattern_refresh_detects_structural_drift() {
        let t = messy();
        let (_, pattern) = t.to_csr_with_pattern();
        // Wrong coordinate at the second emission.
        let mut refresh = pattern.refresh();
        assert!(refresh.push(0, 2, 1.0));
        assert!(!refresh.push(1, 1, 2.0), "deviating emission must fail");
        // Too few emissions.
        let mut refresh = pattern.refresh();
        assert!(refresh.push(0, 2, 1.0));
        assert!(refresh.finish().is_none(), "short replay must fail");
    }

    #[test]
    fn pattern_trusted_replay_matches_checked_replay() {
        let t = messy();
        let (_, pattern) = t.to_csr_with_pattern();
        let mut checked = pattern.refresh();
        for &(i, j, v) in &t.entries {
            assert!(checked.push(i, j, v));
        }
        let mut trusted = pattern.refresh();
        assert!(trusted.push_trusted(&t.entries));
        assert_bitwise_equal(&checked.finish().unwrap(), &trusted.finish().unwrap());
        // Over-long trusted replay is rejected.
        let mut over = pattern.refresh();
        assert!(over.push_trusted(&t.entries));
        assert!(!over.push_trusted(&[(0, 0, 1.0)]));
    }

    #[test]
    fn refreshed_matrices_share_structure_storage() {
        let t = messy();
        let (first, pattern) = t.to_csr_with_pattern();
        let mut refresh = pattern.refresh();
        assert!(refresh.push_trusted(&t.entries));
        let second = refresh.finish().unwrap();
        assert!(std::sync::Arc::ptr_eq(&first.row_ptr, &second.row_ptr));
        assert!(std::sync::Arc::ptr_eq(&first.col_idx, &second.col_idx));
    }
}
