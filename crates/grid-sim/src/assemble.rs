//! Finite-volume assembly of the conductance matrix, power vector and
//! capacitance vector.
//!
//! Node layout: every layer (solid or cavity) contributes an `nx × nz` grid
//! of nodes; global index = `layer_offset + j·nx + i` with `i` across the
//! flow and `j` along it. Cavity nodes are bulk-coolant temperatures.
//!
//! Couplings:
//!
//! * solid in-plane: `k·(face area)/(centre distance)` between neighbours;
//! * solid–solid vertical: half-cell resistances in series;
//! * solid–coolant: half-cell conduction over the full pitch in series with
//!   the convective film `h·(w_C + H_C)·Δz` (one layer's share of the wetted
//!   perimeter — identical to the analytical model's `ĥ`);
//! * solid–solid through the cavity's side walls: `(pitch − w_C)·Δz` cross
//!   section over the path `t_lo/2 + H_C + t_hi/2`;
//! * coolant advection: upwind transport `c_v·V̇` along `+z`, with the inlet
//!   cell fed from the reservoir at the stack inlet temperature.
//!
//! The assembly is generated **per layer** ([`Stack::layer_block`]): each
//! layer owns a contiguous block of triplets, right-hand-side entries and
//! capacitances, and the full [`Assembly`] is the in-order concatenation of
//! the blocks. Because [`crate::sparse::TripletMatrix::to_csr`] sums
//! duplicates in insertion order (its sort is stable), regenerating a single
//! layer's block and re-concatenating reproduces the full rebuild **bitwise**
//! — which is what [`AssemblyCache`] exploits: between transient epochs that
//! only change cavity widths, only the cavity layers' rows are recomputed.

use crate::sparse::{CsrMatrix, CsrPattern, TripletMatrix};
use crate::stack::{CavitySpec, Layer, Stack};
use liquamod_microfluidics::{nusselt, RectDuct};

/// Assembled steady-state system `A·T = p` plus the lumped capacitances
/// needed by the transient stepper.
#[derive(Debug, Clone)]
pub(crate) struct Assembly {
    pub matrix: CsrMatrix,
    pub rhs: Vec<f64>,
    /// Per-node lumped heat capacity (J/K).
    pub capacitance: Vec<f64>,
    /// Node count per layer.
    pub nodes_per_layer: usize,
}

/// One layer's contribution to the assembly: the triplets it emits (global
/// indices, in emission order) plus the right-hand-side and capacitance
/// entries at its own nodes.
#[derive(Debug, Clone)]
struct LayerBlock {
    triplets: Vec<(usize, usize, f64)>,
    /// `(global node index, value)` — accumulated with `+=` into the rhs.
    rhs: Vec<(usize, f64)>,
    /// `(global node index, value)` — each node is set exactly once.
    cap: Vec<(usize, f64)>,
}

impl Stack {
    pub(crate) fn assemble(&self) -> Assembly {
        let blocks: Vec<LayerBlock> = (0..self.layers.len())
            .map(|l| self.layer_block(l))
            .collect();
        self.assembly_from_blocks(&blocks)
    }

    /// Concatenates per-layer blocks, in layer order, into the full system.
    fn assembly_from_blocks(&self, blocks: &[LayerBlock]) -> Assembly {
        self.assembly_from_blocks_with_pattern(blocks).0
    }

    /// [`Stack::assembly_from_blocks`] that also captures the sparsity
    /// pattern of the compression, for later values-only refreshes.
    fn assembly_from_blocks_with_pattern(&self, blocks: &[LayerBlock]) -> (Assembly, CsrPattern) {
        let npl = self.nx * self.nz;
        let n = self.layers.len() * npl;
        let mut m = TripletMatrix::new(n);
        for block in blocks {
            for &(i, j, v) in &block.triplets {
                m.add(i, j, v);
            }
        }
        let (matrix, pattern) = m.to_csr_with_pattern();
        let (rhs, capacitance) = self.system_vectors(blocks);
        (
            Assembly {
                matrix,
                rhs,
                capacitance,
                nodes_per_layer: npl,
            },
            pattern,
        )
    }

    /// Accumulates the right-hand side and capacitance vectors from blocks
    /// (shared by symbolic builds and values-only refreshes).
    fn system_vectors(&self, blocks: &[LayerBlock]) -> (Vec<f64>, Vec<f64>) {
        let n = self.layers.len() * self.nx * self.nz;
        let mut rhs = vec![0.0; n];
        let mut cap = vec![0.0; n];
        for block in blocks {
            for &(i, v) in &block.rhs {
                rhs[i] += v;
            }
            for &(i, v) in &block.cap {
                cap[i] = v;
            }
        }
        (rhs, cap)
    }

    /// Generates layer `l`'s block. The emission order inside a block — and
    /// the block order inside [`Stack::assemble`] — is the contract that
    /// keeps cached partial rebuilds bitwise identical to full rebuilds; do
    /// not reorder.
    fn layer_block(&self, l: usize) -> LayerBlock {
        let nx = self.nx;
        let nz = self.nz;
        let npl = nx * nz;
        let dx = self.pitch().si();
        let dz = self.dz().si();
        let idx = |l: usize, i: usize, j: usize| l * npl + j * nx + i;
        let mut block = LayerBlock {
            triplets: Vec::new(),
            rhs: Vec::new(),
            cap: Vec::new(),
        };
        let m = &mut block.triplets;

        match &self.layers[l] {
            Layer::Solid {
                material,
                thickness,
                power,
                ..
            } => {
                let k = material.thermal_conductivity().si();
                let t = thickness.si();
                for j in 0..nz {
                    for i in 0..nx {
                        let me = idx(l, i, j);
                        // In-plane x.
                        if i + 1 < nx {
                            let g = k * dz * t / dx;
                            couple(m, me, idx(l, i + 1, j), g);
                        }
                        // In-plane z.
                        if j + 1 < nz {
                            let g = k * dx * t / dz;
                            couple(m, me, idx(l, i, j + 1), g);
                        }
                        // Vertical to the layer above, when solid–solid.
                        if l + 1 < self.layers.len() {
                            if let Layer::Solid {
                                material: m_hi,
                                thickness: t_hi,
                                ..
                            } = &self.layers[l + 1]
                            {
                                let a = dx * dz;
                                let r = 0.5 * t / (k * a)
                                    + 0.5 * t_hi.si() / (m_hi.thermal_conductivity().si() * a);
                                couple(m, me, idx(l + 1, i, j), 1.0 / r);
                            }
                        }
                        // Power injection and capacitance.
                        if let Some(p) = power {
                            block.rhs.push((me, p.cell(i, j).as_watts()));
                        }
                        block
                            .cap
                            .push((me, material.volumetric_heat_capacity().si() * dx * dz * t));
                    }
                }
            }
            Layer::Cavity(spec) => {
                // Validated at build time: cavities always sit between
                // two solid layers.
                let (k_lo, t_lo) = solid_props(&self.layers[l - 1]);
                let (k_hi, t_hi) = solid_props(&self.layers[l + 1]);
                let k_wall = spec.wall_material.thermal_conductivity().si();
                let hc = spec.height.si();
                let cv_flow =
                    spec.coolant.volumetric_heat_capacity().si() * spec.flow_rate_per_channel.si();
                for j in 0..nz {
                    for i in 0..nx {
                        let me = idx(l, i, j);
                        let w = spec.widths.at(i, j).si();
                        let h_film = film_coefficient(spec, i, j);
                        // Convective paths to the two solid neighbours:
                        // half-cell conduction over the full pitch in
                        // series with the film over (w + H_C)·dz.
                        let g_film = h_film * (w + hc) * dz;
                        let a_pitch = dx * dz;
                        let g_lo = series(k_lo * a_pitch / (0.5 * t_lo), g_film);
                        let g_hi = series(k_hi * a_pitch / (0.5 * t_hi), g_film);
                        couple(m, me, idx(l - 1, i, j), g_lo);
                        couple(m, me, idx(l + 1, i, j), g_hi);
                        // Side-wall conduction bypassing the coolant.
                        let a_wall = (dx - w).max(0.0) * dz;
                        if a_wall > 0.0 {
                            let r_wall = 0.5 * t_lo / (k_lo * a_wall)
                                + hc / (k_wall * a_wall)
                                + 0.5 * t_hi / (k_hi * a_wall);
                            couple(m, idx(l - 1, i, j), idx(l + 1, i, j), 1.0 / r_wall);
                        }
                        // Upwind advection along +z.
                        m.push((me, me, cv_flow));
                        if j == 0 {
                            block.rhs.push((me, cv_flow * self.inlet.si()));
                        } else {
                            m.push((me, idx(l, i, j - 1), -cv_flow));
                        }
                        block.cap.push((
                            me,
                            spec.coolant.volumetric_heat_capacity().si() * w * hc * dz,
                        ));
                    }
                }
            }
        }
        block
    }
}

/// Caches per-layer assembly blocks across [`Stack`] rebuilds so a driver
/// that swaps stacks mid-run (the transient modulation controller) only
/// pays for the layers that actually changed.
///
/// The cache compares the new stack against the one it last assembled:
///
/// * identical grid/extents/inlet and per-layer equality → all blocks
///   reused;
/// * a changed layer (e.g. new cavity widths, new power map) invalidates its
///   own block plus any neighbour whose conductances depend on it (solids
///   read the geometry of the solid above; cavities read the geometry of
///   both neighbours) — so an epoch that only modulates channel widths
///   regenerates only the cavity layers' rows;
/// * a different layer structure (count, solid/cavity kinds, grid) falls
///   back to a full rebuild.
///
/// Partial and full rebuilds are **bitwise identical** (locked down by a
/// regression test): blocks are concatenated in layer order and triplet
/// summation is stable, so reusing unchanged blocks replays exactly the
/// floating-point operations of a fresh assembly.
#[derive(Debug, Default)]
pub struct AssemblyCache {
    snapshot: Option<Stack>,
    blocks: Vec<LayerBlock>,
    /// Sparsity pattern of the last symbolic compression. A rebuild whose
    /// regenerated blocks emit the same nonzero coordinates replays values
    /// straight into this pattern — no sort, no structural allocation.
    pattern: Option<CsrPattern>,
    values_refreshes: usize,
    symbolic_builds: usize,
}

impl AssemblyCache {
    /// An empty cache; the first assembly through it is a full build.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the cache holds blocks from a previous assembly.
    #[must_use]
    pub fn is_warm(&self) -> bool {
        self.snapshot.is_some()
    }

    /// How many assemblies were served as values-only refreshes of the
    /// cached sparsity pattern (no re-symbolization).
    #[must_use]
    pub fn values_refreshes(&self) -> usize {
        self.values_refreshes
    }

    /// How many assemblies paid for a full symbolic compression (sort +
    /// structure allocation) — the cold build plus any structural change.
    #[must_use]
    pub fn symbolic_builds(&self) -> usize {
        self.symbolic_builds
    }

    /// Assembles `stack`, reusing every cached layer block that is still
    /// valid, and refreshes the cache to `stack`.
    pub(crate) fn assemble(&mut self, stack: &Stack) -> Assembly {
        let mut regenerated = vec![true; stack.layers.len()];
        match &self.snapshot {
            Some(prev) if same_structure(prev, stack) => {
                for (l, regen) in regenerated.iter_mut().enumerate() {
                    if block_stale(prev, stack, l) {
                        self.blocks[l] = stack.layer_block(l);
                    } else {
                        *regen = false;
                    }
                }
            }
            _ => {
                self.blocks = (0..stack.layers.len())
                    .map(|l| stack.layer_block(l))
                    .collect();
                self.pattern = None;
            }
        }
        self.snapshot = Some(stack.clone());
        // Values-only fast path: replay the blocks into the cached pattern,
        // validating the regenerated blocks' coordinates on the way. A
        // width-only epoch keeps the coordinate sequence (widths move
        // conductance *values*; the upwind/film/side-wall structure is
        // fixed by the grid), so this is the steady-state path.
        if let Some(pattern) = &self.pattern {
            if let Some(matrix) = replay_blocks(&self.blocks, &regenerated, pattern) {
                let (rhs, capacitance) = stack.system_vectors(&self.blocks);
                self.values_refreshes += 1;
                return Assembly {
                    matrix,
                    rhs,
                    capacitance,
                    nodes_per_layer: stack.nx * stack.nz,
                };
            }
        }
        self.symbolic_builds += 1;
        let (assembly, pattern) = stack.assembly_from_blocks_with_pattern(&self.blocks);
        self.pattern = Some(pattern);
        assembly
    }
}

/// Replays `blocks` into `pattern`, checking coordinates only for the
/// regenerated blocks (unchanged blocks are byte-identical to what the
/// pattern was recorded from). `None` when the structure drifted — e.g. a
/// width hitting the full pitch zeroes the side-wall area and removes an
/// emission — in which case the caller re-symbolizes.
fn replay_blocks(
    blocks: &[LayerBlock],
    regenerated: &[bool],
    pattern: &CsrPattern,
) -> Option<CsrMatrix> {
    let mut refresh = pattern.refresh();
    for (l, block) in blocks.iter().enumerate() {
        if regenerated[l] {
            for &(i, j, v) in &block.triplets {
                if !refresh.push(i, j, v) {
                    return None;
                }
            }
        } else if !refresh.push_trusted(&block.triplets) {
            return None;
        }
    }
    refresh.finish()
}

/// Whether the two stacks share grid, extents, inlet and layer kinds — the
/// precondition for reusing any block at all.
fn same_structure(a: &Stack, b: &Stack) -> bool {
    a.nx == b.nx
        && a.nz == b.nz
        && a.die_width == b.die_width
        && a.die_length == b.die_length
        && a.inlet == b.inlet
        && a.layers.len() == b.layers.len()
        && a.layers.iter().zip(&b.layers).all(|(x, y)| {
            matches!(
                (x, y),
                (Layer::Solid { .. }, Layer::Solid { .. }) | (Layer::Cavity(_), Layer::Cavity(_))
            )
        })
}

/// Whether layer `l`'s block must be regenerated: its own layer changed, or
/// a neighbour it reads geometry from did.
///
/// * A solid block reads its own layer (conductivity, thickness, power,
///   capacity) and — for the vertical coupling — the material/thickness of a
///   solid layer above.
/// * A cavity block reads its spec and the material/thickness (not the
///   power) of both solid neighbours.
fn block_stale(prev: &Stack, next: &Stack, l: usize) -> bool {
    if prev.layers[l] != next.layers[l] {
        return true;
    }
    match &next.layers[l] {
        Layer::Solid { .. } => {
            l + 1 < next.layers.len() && solid_geometry_changed(prev, next, l + 1)
        }
        Layer::Cavity(_) => {
            solid_geometry_changed(prev, next, l - 1) || solid_geometry_changed(prev, next, l + 1)
        }
    }
}

/// Whether layer `l`'s *conductive* identity changed (material or
/// thickness); power-map-only changes don't count — no neighbour reads them.
fn solid_geometry_changed(prev: &Stack, next: &Stack, l: usize) -> bool {
    match (&prev.layers[l], &next.layers[l]) {
        (
            Layer::Solid {
                material: ma,
                thickness: ta,
                ..
            },
            Layer::Solid {
                material: mb,
                thickness: tb,
                ..
            },
        ) => ma != mb || ta != tb,
        // A solid↔cavity swap already failed `same_structure`; a
        // cavity/cavity pair has no solid geometry to compare.
        _ => false,
    }
}

/// Adds a symmetric conduction coupling of conductance `g` between two
/// nodes. Zero-valued entries are dropped later by
/// [`TripletMatrix::add`], so blocks may carry them without affecting the
/// compressed system.
fn couple(m: &mut Vec<(usize, usize, f64)>, a: usize, b: usize, g: f64) {
    m.push((a, a, g));
    m.push((b, b, g));
    m.push((a, b, -g));
    m.push((b, a, -g));
}

fn series(g1: f64, g2: f64) -> f64 {
    if g1 <= 0.0 || g2 <= 0.0 {
        0.0
    } else {
        1.0 / (1.0 / g1 + 1.0 / g2)
    }
}

fn solid_props(layer: &Layer) -> (f64, f64) {
    match layer {
        Layer::Solid {
            material,
            thickness,
            ..
        } => (material.thermal_conductivity().si(), thickness.si()),
        Layer::Cavity(_) => unreachable!("cavity adjacency validated at build time"),
    }
}

fn film_coefficient(spec: &CavitySpec, i: usize, j: usize) -> f64 {
    let duct = RectDuct::new(spec.widths.at(i, j), spec.height)
        .expect("cavity widths validated at build time");
    nusselt::heat_transfer_coefficient(spec.nusselt, &duct, &spec.coolant).si()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{CavityWidths, StackBuilder};
    use crate::PowerMap;
    use liquamod_units::{HeatFlux, Length};

    fn mm(v: f64) -> Length {
        Length::from_millimeters(v)
    }

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    #[test]
    fn assembly_dimensions() {
        let stack = StackBuilder::new(mm(0.4), mm(0.6), 4, 6)
            .silicon_layer("a", um(50.0))
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("b", um(50.0))
            .build()
            .unwrap();
        let asm = stack.assemble();
        assert_eq!(asm.matrix.size(), 3 * 24);
        assert_eq!(asm.rhs.len(), 72);
        assert_eq!(asm.nodes_per_layer, 24);
        assert!(asm.capacitance.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn conduction_rows_sum_to_zero_without_advection() {
        // A purely solid stack: every row of the conductance matrix must sum
        // to zero (heat flows only between nodes).
        let stack = StackBuilder::new(mm(0.4), mm(0.4), 4, 4)
            .silicon_layer("a", um(50.0))
            .silicon_layer("b", um(100.0))
            .build()
            .unwrap();
        let asm = stack.assemble();
        let ones = vec![1.0; asm.matrix.size()];
        let sums = asm.matrix.mul(&ones);
        for (r, s) in sums.iter().enumerate() {
            assert!(s.abs() < 1e-9, "row {r} sums to {s}");
        }
    }

    #[test]
    fn rhs_carries_power_and_inlet() {
        let p = PowerMap::uniform_flux(HeatFlux::from_w_per_cm2(10.0), 4, 4, mm(0.4), mm(0.4));
        let stack = StackBuilder::new(mm(0.4), mm(0.4), 4, 4)
            .silicon_layer("a", um(50.0))
            .powered_by(p)
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("b", um(50.0))
            .build()
            .unwrap();
        let asm = stack.assemble();
        // Power rows: bottom layer nodes each get flux·cell = 10·1e4·1e-8 W.
        let per_cell = 10.0 * 1e4 * (1e-4 * 1e-4);
        for j in 0..4 {
            for i in 0..4 {
                let r = j * 4 + i;
                assert!((asm.rhs[r] - per_cell).abs() < 1e-12);
            }
        }
        // Inlet rows: cavity layer j = 0 cells carry cv·V̇·T_in.
        let cv_flow = 4.17e6 * (0.5e-6 / 60.0);
        for i in 0..4 {
            let r = 16 + i;
            assert!((asm.rhs[r] - cv_flow * 300.0).abs() < 1e-6);
        }
        // Downstream cavity rows carry no source.
        for i in 0..4 {
            let r = 16 + 4 + i;
            assert!(asm.rhs[r].abs() < 1e-12);
        }
    }

    #[test]
    fn advection_is_upwind() {
        let stack = StackBuilder::new(mm(0.2), mm(0.4), 2, 4)
            .silicon_layer("a", um(50.0))
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("b", um(50.0))
            .build()
            .unwrap();
        let asm = stack.assemble();
        let npl = 8;
        let cv_flow = 4.17e6 * (0.5e-6 / 60.0);
        // Coolant node (0, j=1) couples to (0, j=0) with −cv·V̇ and not the
        // other way round.
        let c_prev = npl;
        let c_here = npl + 2;
        assert!((asm.matrix.get(c_here, c_prev) + cv_flow).abs() < 1e-9);
        assert!(
            asm.matrix.get(c_prev, c_here).abs() < cv_flow * 1e-9,
            "no downstream-to-upstream advection"
        );
    }

    // ---- AssemblyCache -----------------------------------------------

    /// A 5-layer two-cavity stack (the MPSoC shape) with tunable widths and
    /// bottom-die power.
    fn two_cavity_stack(w_um: f64, flux_w_cm2: f64) -> Stack {
        let p =
            PowerMap::uniform_flux(HeatFlux::from_w_per_cm2(flux_w_cm2), 4, 6, mm(0.4), mm(0.6));
        StackBuilder::new(mm(0.4), mm(0.6), 4, 6)
            .silicon_layer("bottom", um(50.0))
            .powered_by(p.clone())
            .microchannel_cavity(CavityWidths::Uniform(um(w_um)))
            .silicon_layer("mid", um(50.0))
            .powered_by(p)
            .microchannel_cavity(CavityWidths::Uniform(um(w_um * 0.8)))
            .silicon_layer("cap", um(50.0))
            .build()
            .unwrap()
    }

    fn assert_assemblies_bitwise_equal(a: &Assembly, b: &Assembly, what: &str) {
        assert_eq!(a.matrix, b.matrix, "{what}: CSR structure/values differ");
        assert_eq!(a.rhs.len(), b.rhs.len());
        for (i, (x, y)) in a.rhs.iter().zip(&b.rhs).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: rhs[{i}]");
        }
        for (i, (x, y)) in a.capacitance.iter().zip(&b.capacitance).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: cap[{i}]");
        }
        assert_eq!(a.nodes_per_layer, b.nodes_per_layer);
    }

    /// The ISSUE's contract: a cached rebuild after a cavity-widths-only
    /// change is bitwise identical to assembling the new stack from scratch.
    #[test]
    fn cached_cavity_width_update_matches_full_rebuild_bitwise() {
        let before = two_cavity_stack(30.0, 25.0);
        let after = two_cavity_stack(42.0, 25.0);
        let mut cache = AssemblyCache::new();
        let first = cache.assemble(&before);
        assert_assemblies_bitwise_equal(&first, &before.assemble(), "cold cache");
        assert!(cache.is_warm());
        let partial = cache.assemble(&after);
        assert_assemblies_bitwise_equal(&partial, &after.assemble(), "width update");
    }

    /// Power-map changes (a new workload phase) also reproduce the full
    /// rebuild bitwise through the cache.
    #[test]
    fn cached_power_update_matches_full_rebuild_bitwise() {
        let before = two_cavity_stack(30.0, 25.0);
        let after = two_cavity_stack(30.0, 60.0);
        let mut cache = AssemblyCache::new();
        let _ = cache.assemble(&before);
        let partial = cache.assemble(&after);
        assert_assemblies_bitwise_equal(&partial, &after.assemble(), "power update");
    }

    /// A width-only change regenerates only the cavity layers' blocks.
    #[test]
    fn width_change_regenerates_only_cavity_blocks() {
        let before = two_cavity_stack(30.0, 25.0);
        let after = two_cavity_stack(42.0, 25.0);
        for l in 0..before.layers.len() {
            let stale = block_stale(&before, &after, l);
            let is_cavity = matches!(after.layers[l], Layer::Cavity(_));
            assert_eq!(stale, is_cavity, "layer {l}");
        }
        // And a power change touches only the powered solid layers.
        let hotter = two_cavity_stack(30.0, 60.0);
        for l in 0..before.layers.len() {
            let stale = block_stale(&before, &hotter, l);
            let expects = matches!(&hotter.layers[l], Layer::Solid { power: Some(_), .. });
            assert_eq!(stale, expects, "layer {l}");
        }
    }

    /// The values-only refresh: a width-only epoch must not re-symbolize —
    /// and the refreshed assembly must still equal the full rebuild bitwise.
    #[test]
    fn width_epochs_are_values_only_refreshes() {
        let mut cache = AssemblyCache::new();
        let first = cache.assemble(&two_cavity_stack(30.0, 25.0));
        assert_eq!(cache.symbolic_builds(), 1, "cold build is symbolic");
        assert_eq!(cache.values_refreshes(), 0);
        assert_assemblies_bitwise_equal(&first, &two_cavity_stack(30.0, 25.0).assemble(), "cold");
        // A sweep of width-only epochs: every one is a values-only refresh.
        for (k, w) in [42.0, 35.5, 18.0, 49.9].into_iter().enumerate() {
            let stack = two_cavity_stack(w, 25.0);
            let refreshed = cache.assemble(&stack);
            assert_eq!(cache.values_refreshes(), k + 1, "width epoch {k}");
            assert_eq!(cache.symbolic_builds(), 1, "no re-symbolization");
            assert_assemblies_bitwise_equal(&refreshed, &stack.assemble(), "width epoch");
        }
        // A power-only phase change also keeps the pattern (power moves the
        // rhs, not the matrix structure).
        let hotter = two_cavity_stack(49.9, 60.0);
        let refreshed = cache.assemble(&hotter);
        assert_eq!(cache.values_refreshes(), 5);
        assert_eq!(cache.symbolic_builds(), 1);
        assert_assemblies_bitwise_equal(&refreshed, &hotter.assemble(), "power epoch");
    }

    /// Builder-valid stacks keep widths strictly inside `(0, pitch)`, so
    /// their emission structure never drifts — but [`replay_blocks`] still
    /// guards against it. Exercise the guard directly with a tampered block.
    #[test]
    fn structural_drift_in_replay_is_detected() {
        let stack = two_cavity_stack(30.0, 25.0);
        let blocks: Vec<LayerBlock> = (0..stack.layers.len())
            .map(|l| stack.layer_block(l))
            .collect();
        let (_, pattern) = stack.assembly_from_blocks_with_pattern(&blocks);
        let all_regenerated = vec![true; blocks.len()];
        // Untampered replay succeeds.
        assert!(replay_blocks(&blocks, &all_regenerated, &pattern).is_some());
        // A regenerated block that lost an emission is caught by the
        // coordinate check (or, at the latest, by the final count check).
        let mut dropped = blocks.clone();
        dropped[1].triplets.remove(7);
        assert!(replay_blocks(&dropped, &all_regenerated, &pattern).is_none());
        // A block that gained emissions overruns the recorded count even on
        // the trusted (cached-block) path.
        let mut grown = blocks.clone();
        let extra = grown[2].triplets[0];
        grown[2].triplets.push(extra);
        assert!(replay_blocks(&grown, &vec![false; blocks.len()], &pattern).is_none());
        // A regenerated block with a moved coordinate is caught even when
        // the emission count is unchanged.
        let mut moved = blocks.clone();
        moved[1].triplets[3].0 += 1;
        assert!(replay_blocks(&moved, &all_regenerated, &pattern).is_none());
    }

    /// A structurally different stack falls back to a full rebuild instead
    /// of mixing incompatible blocks.
    #[test]
    fn structure_change_falls_back_to_full_rebuild() {
        let five = two_cavity_stack(30.0, 25.0);
        let three = StackBuilder::new(mm(0.4), mm(0.6), 4, 6)
            .silicon_layer("a", um(50.0))
            .microchannel_cavity(CavityWidths::Uniform(um(30.0)))
            .silicon_layer("b", um(50.0))
            .build()
            .unwrap();
        assert!(!same_structure(&five, &three));
        let mut cache = AssemblyCache::new();
        let _ = cache.assemble(&five);
        let rebuilt = cache.assemble(&three);
        assert_assemblies_bitwise_equal(&rebuilt, &three.assemble(), "structure change");
    }
}
