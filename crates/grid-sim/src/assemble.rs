//! Finite-volume assembly of the conductance matrix, power vector and
//! capacitance vector.
//!
//! Node layout: every layer (solid or cavity) contributes an `nx × nz` grid
//! of nodes; global index = `layer_offset + j·nx + i` with `i` across the
//! flow and `j` along it. Cavity nodes are bulk-coolant temperatures.
//!
//! Couplings:
//!
//! * solid in-plane: `k·(face area)/(centre distance)` between neighbours;
//! * solid–solid vertical: half-cell resistances in series;
//! * solid–coolant: half-cell conduction over the full pitch in series with
//!   the convective film `h·(w_C + H_C)·Δz` (one layer's share of the wetted
//!   perimeter — identical to the analytical model's `ĥ`);
//! * solid–solid through the cavity's side walls: `(pitch − w_C)·Δz` cross
//!   section over the path `t_lo/2 + H_C + t_hi/2`;
//! * coolant advection: upwind transport `c_v·V̇` along `+z`, with the inlet
//!   cell fed from the reservoir at the stack inlet temperature.

use crate::sparse::{CsrMatrix, TripletMatrix};
use crate::stack::{CavitySpec, Layer, Stack};
use liquamod_microfluidics::{nusselt, RectDuct};

/// Assembled steady-state system `A·T = p` plus the lumped capacitances
/// needed by the transient stepper.
#[derive(Debug, Clone)]
pub(crate) struct Assembly {
    pub matrix: CsrMatrix,
    pub rhs: Vec<f64>,
    /// Per-node lumped heat capacity (J/K).
    pub capacitance: Vec<f64>,
    /// Node count per layer.
    pub nodes_per_layer: usize,
}

impl Stack {
    pub(crate) fn assemble(&self) -> Assembly {
        let nx = self.nx;
        let nz = self.nz;
        let npl = nx * nz;
        let n = self.layers.len() * npl;
        let mut m = TripletMatrix::new(n);
        let mut rhs = vec![0.0; n];
        let mut cap = vec![0.0; n];

        let dx = self.pitch().si();
        let dz = self.dz().si();
        let idx = |l: usize, i: usize, j: usize| l * npl + j * nx + i;

        for (l, layer) in self.layers.iter().enumerate() {
            match layer {
                Layer::Solid {
                    material,
                    thickness,
                    power,
                    ..
                } => {
                    let k = material.thermal_conductivity().si();
                    let t = thickness.si();
                    for j in 0..nz {
                        for i in 0..nx {
                            let me = idx(l, i, j);
                            // In-plane x.
                            if i + 1 < nx {
                                let g = k * dz * t / dx;
                                couple(&mut m, me, idx(l, i + 1, j), g);
                            }
                            // In-plane z.
                            if j + 1 < nz {
                                let g = k * dx * t / dz;
                                couple(&mut m, me, idx(l, i, j + 1), g);
                            }
                            // Vertical to the layer above, when solid–solid.
                            if l + 1 < self.layers.len() {
                                if let Layer::Solid {
                                    material: m_hi,
                                    thickness: t_hi,
                                    ..
                                } = &self.layers[l + 1]
                                {
                                    let a = dx * dz;
                                    let r = 0.5 * t / (k * a)
                                        + 0.5 * t_hi.si() / (m_hi.thermal_conductivity().si() * a);
                                    couple(&mut m, me, idx(l + 1, i, j), 1.0 / r);
                                }
                            }
                            // Power injection and capacitance.
                            if let Some(p) = power {
                                rhs[me] += p.cell(i, j).as_watts();
                            }
                            cap[me] = material.volumetric_heat_capacity().si() * dx * dz * t;
                        }
                    }
                }
                Layer::Cavity(spec) => {
                    // Validated at build time: cavities always sit between
                    // two solid layers.
                    let (k_lo, t_lo) = solid_props(&self.layers[l - 1]);
                    let (k_hi, t_hi) = solid_props(&self.layers[l + 1]);
                    let k_wall = spec.wall_material.thermal_conductivity().si();
                    let hc = spec.height.si();
                    let cv_flow = spec.coolant.volumetric_heat_capacity().si()
                        * spec.flow_rate_per_channel.si();
                    for j in 0..nz {
                        for i in 0..nx {
                            let me = idx(l, i, j);
                            let w = spec.widths.at(i, j).si();
                            let h_film = film_coefficient(spec, i, j);
                            // Convective paths to the two solid neighbours:
                            // half-cell conduction over the full pitch in
                            // series with the film over (w + H_C)·dz.
                            let g_film = h_film * (w + hc) * dz;
                            let a_pitch = dx * dz;
                            let g_lo = series(k_lo * a_pitch / (0.5 * t_lo), g_film);
                            let g_hi = series(k_hi * a_pitch / (0.5 * t_hi), g_film);
                            couple(&mut m, me, idx(l - 1, i, j), g_lo);
                            couple(&mut m, me, idx(l + 1, i, j), g_hi);
                            // Side-wall conduction bypassing the coolant.
                            let a_wall = (dx - w).max(0.0) * dz;
                            if a_wall > 0.0 {
                                let r_wall = 0.5 * t_lo / (k_lo * a_wall)
                                    + hc / (k_wall * a_wall)
                                    + 0.5 * t_hi / (k_hi * a_wall);
                                couple(&mut m, idx(l - 1, i, j), idx(l + 1, i, j), 1.0 / r_wall);
                            }
                            // Upwind advection along +z.
                            m.add(me, me, cv_flow);
                            if j == 0 {
                                rhs[me] += cv_flow * self.inlet.si();
                            } else {
                                m.add(me, idx(l, i, j - 1), -cv_flow);
                            }
                            cap[me] = spec.coolant.volumetric_heat_capacity().si() * w * hc * dz;
                        }
                    }
                }
            }
        }

        Assembly {
            matrix: m.to_csr(),
            rhs,
            capacitance: cap,
            nodes_per_layer: npl,
        }
    }
}

/// Adds a symmetric conduction coupling of conductance `g` between two nodes.
fn couple(m: &mut TripletMatrix, a: usize, b: usize, g: f64) {
    m.add(a, a, g);
    m.add(b, b, g);
    m.add(a, b, -g);
    m.add(b, a, -g);
}

fn series(g1: f64, g2: f64) -> f64 {
    if g1 <= 0.0 || g2 <= 0.0 {
        0.0
    } else {
        1.0 / (1.0 / g1 + 1.0 / g2)
    }
}

fn solid_props(layer: &Layer) -> (f64, f64) {
    match layer {
        Layer::Solid {
            material,
            thickness,
            ..
        } => (material.thermal_conductivity().si(), thickness.si()),
        Layer::Cavity(_) => unreachable!("cavity adjacency validated at build time"),
    }
}

fn film_coefficient(spec: &CavitySpec, i: usize, j: usize) -> f64 {
    let duct = RectDuct::new(spec.widths.at(i, j), spec.height)
        .expect("cavity widths validated at build time");
    nusselt::heat_transfer_coefficient(spec.nusselt, &duct, &spec.coolant).si()
}

#[cfg(test)]
mod tests {
    use crate::stack::{CavityWidths, StackBuilder};
    use crate::PowerMap;
    use liquamod_units::{HeatFlux, Length};

    fn mm(v: f64) -> Length {
        Length::from_millimeters(v)
    }

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    #[test]
    fn assembly_dimensions() {
        let stack = StackBuilder::new(mm(0.4), mm(0.6), 4, 6)
            .silicon_layer("a", um(50.0))
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("b", um(50.0))
            .build()
            .unwrap();
        let asm = stack.assemble();
        assert_eq!(asm.matrix.size(), 3 * 24);
        assert_eq!(asm.rhs.len(), 72);
        assert_eq!(asm.nodes_per_layer, 24);
        assert!(asm.capacitance.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn conduction_rows_sum_to_zero_without_advection() {
        // A purely solid stack: every row of the conductance matrix must sum
        // to zero (heat flows only between nodes).
        let stack = StackBuilder::new(mm(0.4), mm(0.4), 4, 4)
            .silicon_layer("a", um(50.0))
            .silicon_layer("b", um(100.0))
            .build()
            .unwrap();
        let asm = stack.assemble();
        let ones = vec![1.0; asm.matrix.size()];
        let sums = asm.matrix.mul(&ones);
        for (r, s) in sums.iter().enumerate() {
            assert!(s.abs() < 1e-9, "row {r} sums to {s}");
        }
    }

    #[test]
    fn rhs_carries_power_and_inlet() {
        let p = PowerMap::uniform_flux(HeatFlux::from_w_per_cm2(10.0), 4, 4, mm(0.4), mm(0.4));
        let stack = StackBuilder::new(mm(0.4), mm(0.4), 4, 4)
            .silicon_layer("a", um(50.0))
            .powered_by(p)
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("b", um(50.0))
            .build()
            .unwrap();
        let asm = stack.assemble();
        // Power rows: bottom layer nodes each get flux·cell = 10·1e4·1e-8 W.
        let per_cell = 10.0 * 1e4 * (1e-4 * 1e-4);
        for j in 0..4 {
            for i in 0..4 {
                let r = j * 4 + i;
                assert!((asm.rhs[r] - per_cell).abs() < 1e-12);
            }
        }
        // Inlet rows: cavity layer j = 0 cells carry cv·V̇·T_in.
        let cv_flow = 4.17e6 * (0.5e-6 / 60.0);
        for i in 0..4 {
            let r = 16 + i;
            assert!((asm.rhs[r] - cv_flow * 300.0).abs() < 1e-6);
        }
        // Downstream cavity rows carry no source.
        for i in 0..4 {
            let r = 16 + 4 + i;
            assert!(asm.rhs[r].abs() < 1e-12);
        }
    }

    #[test]
    fn advection_is_upwind() {
        let stack = StackBuilder::new(mm(0.2), mm(0.4), 2, 4)
            .silicon_layer("a", um(50.0))
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("b", um(50.0))
            .build()
            .unwrap();
        let asm = stack.assemble();
        let npl = 8;
        let cv_flow = 4.17e6 * (0.5e-6 / 60.0);
        // Coolant node (0, j=1) couples to (0, j=0) with −cv·V̇ and not the
        // other way round.
        let c_prev = npl;
        let c_here = npl + 2;
        assert!((asm.matrix.get(c_here, c_prev) + cv_flow).abs() < 1e-9);
        assert!(
            asm.matrix.get(c_prev, c_here).abs() < cv_flow * 1e-9,
            "no downstream-to-upstream advection"
        );
    }
}
