//! Cell-resolved power maps for active layers.

use crate::GridSimError;
use liquamod_units::{Area, HeatFlux, Length, Power};

/// Power injected into each cell of a layer's `nx × nz` grid (watts per
/// cell). Column index `i` runs across the flow, row index `j` along it.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerMap {
    nx: usize,
    nz: usize,
    /// Row-major `[j][i]` watts per cell.
    watts: Vec<f64>,
}

impl PowerMap {
    /// Creates an all-zero map.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(nx: usize, nz: usize) -> Self {
        assert!(nx > 0 && nz > 0, "power map needs a non-empty grid");
        Self {
            nx,
            nz,
            watts: vec![0.0; nx * nz],
        }
    }

    /// Creates a map with a uniform areal heat flux over a die of the given
    /// extent: every cell receives `flux · cell_area`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn uniform_flux(
        flux: HeatFlux,
        nx: usize,
        nz: usize,
        die_width: Length,
        die_length: Length,
    ) -> Self {
        let mut map = Self::zeros(nx, nz);
        let cell = Area::from_si(die_width.si() / nx as f64 * die_length.si() / nz as f64);
        let w = (flux * cell).as_watts();
        map.watts.iter_mut().for_each(|v| *v = w);
        map
    }

    /// Builds a map by sampling a flux function at each cell centre:
    /// `f(x_center, z_center) → HeatFlux`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_flux_fn(
        nx: usize,
        nz: usize,
        die_width: Length,
        die_length: Length,
        f: impl Fn(Length, Length) -> HeatFlux,
    ) -> Self {
        let mut map = Self::zeros(nx, nz);
        let dx = die_width.si() / nx as f64;
        let dz = die_length.si() / nz as f64;
        let cell = Area::from_si(dx * dz);
        for j in 0..nz {
            for i in 0..nx {
                let x = Length::from_meters((i as f64 + 0.5) * dx);
                let z = Length::from_meters((j as f64 + 0.5) * dz);
                map.watts[j * nx + i] = (f(x, z) * cell).as_watts();
            }
        }
        map
    }

    /// Grid dimensions `(nx, nz)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.nz)
    }

    /// Watts injected into cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn cell(&self, i: usize, j: usize) -> Power {
        assert!(i < self.nx && j < self.nz, "cell index out of range");
        Power::from_watts(self.watts[j * self.nx + i])
    }

    /// Sets the wattage of cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set_cell(&mut self, i: usize, j: usize, power: Power) {
        assert!(i < self.nx && j < self.nz, "cell index out of range");
        self.watts[j * self.nx + i] = power.as_watts();
    }

    /// Adds wattage to cell `(i, j)` (floorplan blocks accumulate).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn add_cell(&mut self, i: usize, j: usize, power: Power) {
        assert!(i < self.nx && j < self.nz, "cell index out of range");
        self.watts[j * self.nx + i] += power.as_watts();
    }

    /// Total power over the map.
    pub fn total(&self) -> Power {
        Power::from_watts(self.watts.iter().sum())
    }

    /// Returns a copy with all cells multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            nx: self.nx,
            nz: self.nz,
            watts: self.watts.iter().map(|w| w * factor).collect(),
        }
    }

    /// Checks this map against an expected grid.
    ///
    /// # Errors
    ///
    /// [`GridSimError::PowerMapMismatch`] when dimensions differ.
    pub fn check_dims(&self, nx: usize, nz: usize) -> Result<(), GridSimError> {
        if (self.nx, self.nz) == (nx, nz) {
            Ok(())
        } else {
            Err(GridSimError::PowerMapMismatch {
                expected: (nx, nz),
                got: (self.nx, self.nz),
            })
        }
    }

    /// Raw row-major watts (plotting/export convenience).
    pub fn as_watts(&self) -> &[f64] {
        &self.watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_flux_total() {
        // 50 W/cm² over 1 cm × 1 cm = 50 W regardless of grid.
        let m = PowerMap::uniform_flux(
            HeatFlux::from_w_per_cm2(50.0),
            7,
            13,
            Length::from_centimeters(1.0),
            Length::from_centimeters(1.0),
        );
        assert!((m.total().as_watts() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn flux_fn_sampling() {
        // Step in z: first half 0, second half 100 W/cm².
        let m = PowerMap::from_flux_fn(
            2,
            4,
            Length::from_centimeters(1.0),
            Length::from_centimeters(1.0),
            |_, z| {
                if z.si() > 0.005 {
                    HeatFlux::from_w_per_cm2(100.0)
                } else {
                    HeatFlux::ZERO
                }
            },
        );
        assert_eq!(m.cell(0, 0).as_watts(), 0.0);
        assert_eq!(m.cell(1, 1).as_watts(), 0.0);
        assert!(m.cell(0, 2).as_watts() > 0.0);
        assert!((m.total().as_watts() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn set_add_cell() {
        let mut m = PowerMap::zeros(3, 3);
        m.set_cell(1, 2, Power::from_watts(2.0));
        m.add_cell(1, 2, Power::from_watts(0.5));
        assert!((m.cell(1, 2).as_watts() - 2.5).abs() < 1e-12);
        assert!((m.total().as_watts() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn scaled_map() {
        let m = PowerMap::uniform_flux(
            HeatFlux::from_w_per_cm2(10.0),
            2,
            2,
            Length::from_centimeters(1.0),
            Length::from_centimeters(1.0),
        )
        .scaled(0.5);
        assert!((m.total().as_watts() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn dims_check() {
        let m = PowerMap::zeros(4, 5);
        assert!(m.check_dims(4, 5).is_ok());
        assert!(matches!(
            m.check_dims(5, 4),
            Err(GridSimError::PowerMapMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_bounds() {
        PowerMap::zeros(2, 2).cell(2, 0);
    }
}
