//! Error type for the grid simulator.

use std::fmt;

/// Error returned by stack construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum GridSimError {
    /// The stack description is inconsistent.
    InvalidStack {
        /// Human-readable description of the problem.
        what: String,
    },
    /// A power map's grid does not match the stack grid.
    PowerMapMismatch {
        /// Expected `(nx, nz)`.
        expected: (usize, usize),
        /// Provided `(nx, nz)`.
        got: (usize, usize),
    },
    /// The iterative solver failed to converge.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Final relative residual.
        residual: f64,
    },
    /// A transient-stepping option is invalid.
    InvalidTransient {
        /// Human-readable description of the problem.
        what: String,
    },
    /// A serialized state snapshot does not parse back (missing key,
    /// malformed array, non-numeric element) — see [`crate::snapshot`].
    InvalidSnapshot {
        /// Human-readable description of the problem.
        what: String,
    },
}

impl fmt::Display for GridSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridSimError::InvalidStack { what } => write!(f, "invalid stack: {what}"),
            GridSimError::PowerMapMismatch { expected, got } => write!(
                f,
                "power map grid {}x{} does not match stack grid {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            GridSimError::NoConvergence { iterations, residual } => write!(
                f,
                "linear solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            GridSimError::InvalidTransient { what } => write!(f, "invalid transient options: {what}"),
            GridSimError::InvalidSnapshot { what } => write!(f, "invalid state snapshot: {what}"),
        }
    }
}

impl std::error::Error for GridSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(GridSimError::InvalidStack {
            what: "no layers".into()
        }
        .to_string()
        .contains("no layers"));
        assert!(GridSimError::PowerMapMismatch {
            expected: (10, 20),
            got: (5, 5)
        }
        .to_string()
        .contains("5x5"));
        assert!(GridSimError::NoConvergence {
            iterations: 100,
            residual: 1e-3
        }
        .to_string()
        .contains("100"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<GridSimError>();
    }
}
