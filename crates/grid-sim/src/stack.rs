//! Stack description: layers, cavities, and the builder API.

use crate::{GridSimError, Material, PowerMap};
use liquamod_microfluidics::{nusselt::NusseltCorrelation, Coolant};
use liquamod_units::{Length, Temperature, VolumetricFlowRate};

/// Channel widths inside a cavity.
///
/// Width-modulated designs supply per-column, per-cell samples (one value
/// per `z` cell for each channel column, typically produced by sampling a
/// width profile at the cell centres).
#[derive(Debug, Clone, PartialEq)]
pub enum CavityWidths {
    /// Every channel has this constant width.
    Uniform(Length),
    /// `columns[i][j]` is the width of channel column `i` at `z` cell `j`.
    PerColumn(Vec<Vec<Length>>),
}

impl CavityWidths {
    /// Width of column `i` at cell `j`.
    ///
    /// # Panics
    ///
    /// Panics if the indices exceed the sampled grid (checked at build time).
    pub fn at(&self, i: usize, j: usize) -> Length {
        match self {
            CavityWidths::Uniform(w) => *w,
            CavityWidths::PerColumn(cols) => cols[i][j],
        }
    }
}

/// Full description of one microchannel cavity layer.
#[derive(Debug, Clone, PartialEq)]
pub struct CavitySpec {
    /// Channel height `H_C`.
    pub height: Length,
    /// Coolant property set.
    pub coolant: Coolant,
    /// Volumetric flow rate per channel.
    pub flow_rate_per_channel: VolumetricFlowRate,
    /// Nusselt correlation for the wall-to-coolant coefficient.
    pub nusselt: NusseltCorrelation,
    /// Material of the channel side walls.
    pub wall_material: Material,
    /// Channel widths.
    pub widths: CavityWidths,
}

impl CavitySpec {
    /// Table-I-flavoured cavity: 100 µm tall channels, water at 300 K,
    /// 0.5 mL/min/channel (the calibrated default flow), Shah–London H1,
    /// silicon walls.
    pub fn date2012(widths: CavityWidths) -> Self {
        Self {
            height: Length::from_micrometers(100.0),
            coolant: Coolant::water_300k(),
            flow_rate_per_channel: VolumetricFlowRate::from_ml_per_min(0.5),
            nusselt: NusseltCorrelation::ShahLondonH1,
            wall_material: Material::silicon(),
            widths,
        }
    }
}

/// One layer of the stack (bottom to top).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Layer {
    Solid {
        name: String,
        material: Material,
        thickness: Length,
        power: Option<PowerMap>,
    },
    Cavity(CavitySpec),
}

/// Builder for [`Stack`].
///
/// Layers are appended bottom-to-top; [`StackBuilder::powered_by`] attaches a
/// power map to the most recently added solid layer.
#[derive(Debug, Clone)]
pub struct StackBuilder {
    die_width: Length,
    die_length: Length,
    nx: usize,
    nz: usize,
    inlet: Temperature,
    layers: Vec<Layer>,
}

impl StackBuilder {
    /// Starts a stack over a die of `die_width` (across the flow, divided
    /// into `nx` cells — one channel column each) and `die_length` (along
    /// the flow, `nz` cells), with a 300 K coolant inlet.
    pub fn new(die_width: Length, die_length: Length, nx: usize, nz: usize) -> Self {
        Self {
            die_width,
            die_length,
            nx,
            nz,
            inlet: Temperature::from_kelvin(300.0),
            layers: Vec::new(),
        }
    }

    /// Sets the coolant inlet temperature (applies to all cavities).
    pub fn inlet_temperature(mut self, t: Temperature) -> Self {
        self.inlet = t;
        self
    }

    /// Appends a solid layer of the given material.
    pub fn solid_layer(
        mut self,
        name: impl Into<String>,
        material: Material,
        thickness: Length,
    ) -> Self {
        self.layers.push(Layer::Solid {
            name: name.into(),
            material,
            thickness,
            power: None,
        });
        self
    }

    /// Appends a silicon layer (shorthand for the common case).
    pub fn silicon_layer(self, name: impl Into<String>, thickness: Length) -> Self {
        self.solid_layer(name, Material::silicon(), thickness)
    }

    /// Attaches a power map to the most recently added solid layer.
    ///
    /// # Panics
    ///
    /// Panics if no solid layer has been added yet — attaching power to
    /// nothing is a construction bug, reported immediately.
    pub fn powered_by(mut self, power: PowerMap) -> Self {
        match self.layers.last_mut() {
            Some(Layer::Solid { power: p, .. }) => {
                *p = Some(power);
                self
            }
            _ => panic!("powered_by must follow a solid layer"),
        }
    }

    /// Appends a microchannel cavity with Table-I defaults and the given
    /// widths.
    pub fn microchannel_cavity(self, widths: CavityWidths) -> Self {
        self.microchannel_cavity_with(CavitySpec::date2012(widths))
    }

    /// Appends a microchannel cavity with a fully custom spec.
    pub fn microchannel_cavity_with(mut self, spec: CavitySpec) -> Self {
        self.layers.push(Layer::Cavity(spec));
        self
    }

    /// Validates and freezes the stack.
    ///
    /// # Errors
    ///
    /// [`GridSimError::InvalidStack`] when the description is inconsistent
    /// (empty stack, cavity on the boundary or adjacent to another cavity,
    /// non-positive dimensions, width samples of the wrong shape, widths not
    /// inside `(0, pitch)`), and [`GridSimError::PowerMapMismatch`] when a
    /// power map grid disagrees with the stack grid.
    pub fn build(self) -> Result<Stack, GridSimError> {
        let fail = |what: &str| {
            Err(GridSimError::InvalidStack {
                what: what.to_string(),
            })
        };
        if self.nx == 0 || self.nz == 0 {
            return fail("grid must be at least 1x1");
        }
        if !(self.die_width.si() > 0.0 && self.die_length.si() > 0.0) {
            return fail("die extents must be positive");
        }
        if self.layers.is_empty() {
            return fail("stack has no layers");
        }
        if !self.layers.iter().any(|l| matches!(l, Layer::Solid { .. })) {
            return fail("stack needs at least one solid layer");
        }
        let pitch = self.die_width.si() / self.nx as f64;
        for (idx, layer) in self.layers.iter().enumerate() {
            match layer {
                Layer::Solid {
                    thickness,
                    power,
                    name,
                    ..
                } => {
                    if thickness.si() <= 0.0 {
                        return Err(GridSimError::InvalidStack {
                            what: format!("layer '{name}' thickness must be positive"),
                        });
                    }
                    if let Some(p) = power {
                        p.check_dims(self.nx, self.nz)?;
                    }
                }
                Layer::Cavity(spec) => {
                    if idx == 0 || idx + 1 == self.layers.len() {
                        return fail("cavity layers must sit between solid layers");
                    }
                    if matches!(self.layers[idx - 1], Layer::Cavity(_))
                        || matches!(self.layers[idx + 1], Layer::Cavity(_))
                    {
                        return fail("two cavities cannot be adjacent");
                    }
                    if spec.height.si() <= 0.0 {
                        return fail("cavity height must be positive");
                    }
                    match &spec.widths {
                        CavityWidths::Uniform(w) => {
                            if w.si() <= 0.0 || w.si() >= pitch {
                                return fail("channel width must be inside (0, pitch)");
                            }
                        }
                        CavityWidths::PerColumn(cols) => {
                            if cols.len() != self.nx {
                                return fail("per-column widths must have nx columns");
                            }
                            for col in cols {
                                if col.len() != self.nz {
                                    return fail("per-column widths must have nz samples");
                                }
                                if col.iter().any(|w| w.si() <= 0.0 || w.si() >= pitch) {
                                    return fail("channel width must be inside (0, pitch)");
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(Stack {
            die_width: self.die_width,
            die_length: self.die_length,
            nx: self.nx,
            nz: self.nz,
            inlet: self.inlet,
            layers: self.layers,
        })
    }
}

/// A validated 3D stack ready for simulation.
#[derive(Debug, Clone)]
pub struct Stack {
    pub(crate) die_width: Length,
    pub(crate) die_length: Length,
    pub(crate) nx: usize,
    pub(crate) nz: usize,
    pub(crate) inlet: Temperature,
    pub(crate) layers: Vec<Layer>,
}

impl Stack {
    /// Grid dimensions `(nx, nz)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.nz)
    }

    /// Number of layers (solid + cavity).
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Channel pitch implied by the grid (`die_width / nx`).
    pub fn pitch(&self) -> Length {
        Length::from_meters(self.die_width.si() / self.nx as f64)
    }

    /// Cell length along the flow (`die_length / nz`).
    pub fn dz(&self) -> Length {
        Length::from_meters(self.die_length.si() / self.nz as f64)
    }

    /// Coolant inlet temperature.
    pub fn inlet_temperature(&self) -> Temperature {
        self.inlet
    }

    /// Total power injected by all power maps.
    pub fn total_power(&self) -> liquamod_units::Power {
        let watts: f64 = self
            .layers
            .iter()
            .map(|l| match l {
                Layer::Solid { power: Some(p), .. } => p.total().as_watts(),
                _ => 0.0,
            })
            .sum();
        liquamod_units::Power::from_watts(watts)
    }

    /// Names of layers, bottom to top (cavities are labelled `"<cavity>"`).
    pub fn layer_names(&self) -> Vec<String> {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Solid { name, .. } => name.clone(),
                Layer::Cavity(_) => "<cavity>".to_string(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquamod_units::HeatFlux;

    fn mm(v: f64) -> Length {
        Length::from_millimeters(v)
    }

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn basic_builder() -> StackBuilder {
        StackBuilder::new(mm(1.0), mm(2.0), 10, 20)
    }

    #[test]
    fn builds_sandwich() {
        let stack = basic_builder()
            .silicon_layer("bottom", um(50.0))
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("top", um(50.0))
            .build()
            .unwrap();
        assert_eq!(stack.n_layers(), 3);
        assert_eq!(stack.dims(), (10, 20));
        assert!((stack.pitch().as_micrometers() - 100.0).abs() < 1e-9);
        assert!((stack.dz().as_micrometers() - 100.0).abs() < 1e-9);
        assert_eq!(stack.layer_names(), vec!["bottom", "<cavity>", "top"]);
    }

    #[test]
    fn rejects_cavity_on_boundary() {
        let err = basic_builder()
            .silicon_layer("only", um(50.0))
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .build();
        assert!(matches!(err, Err(GridSimError::InvalidStack { .. })));
    }

    #[test]
    fn rejects_adjacent_cavities() {
        let err = basic_builder()
            .silicon_layer("a", um(50.0))
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("b", um(50.0))
            .build();
        assert!(matches!(err, Err(GridSimError::InvalidStack { .. })));
    }

    #[test]
    fn rejects_width_beyond_pitch() {
        let err = basic_builder()
            .silicon_layer("a", um(50.0))
            .microchannel_cavity(CavityWidths::Uniform(um(150.0)))
            .silicon_layer("b", um(50.0))
            .build();
        assert!(matches!(err, Err(GridSimError::InvalidStack { .. })));
    }

    #[test]
    fn rejects_misshapen_per_column_widths() {
        let err = basic_builder()
            .silicon_layer("a", um(50.0))
            .microchannel_cavity(CavityWidths::PerColumn(vec![vec![um(30.0); 20]; 3]))
            .silicon_layer("b", um(50.0))
            .build();
        assert!(matches!(err, Err(GridSimError::InvalidStack { .. })));
    }

    #[test]
    fn accepts_per_column_widths() {
        let stack = basic_builder()
            .silicon_layer("a", um(50.0))
            .microchannel_cavity(CavityWidths::PerColumn(vec![vec![um(30.0); 20]; 10]))
            .silicon_layer("b", um(50.0))
            .build();
        assert!(stack.is_ok());
    }

    #[test]
    fn rejects_power_map_mismatch() {
        let err = basic_builder()
            .silicon_layer("a", um(50.0))
            .powered_by(PowerMap::zeros(5, 5))
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("b", um(50.0))
            .build();
        assert!(matches!(err, Err(GridSimError::PowerMapMismatch { .. })));
    }

    #[test]
    #[should_panic(expected = "must follow a solid layer")]
    fn powered_by_needs_solid() {
        let _ = basic_builder().powered_by(PowerMap::zeros(10, 20));
    }

    #[test]
    fn total_power_sums_layers() {
        let p = PowerMap::uniform_flux(HeatFlux::from_w_per_cm2(10.0), 10, 20, mm(1.0), mm(2.0));
        let stack = basic_builder()
            .silicon_layer("a", um(50.0))
            .powered_by(p.clone())
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("b", um(50.0))
            .powered_by(p)
            .build()
            .unwrap();
        // 10 W/cm² × 0.02 cm² × 2 layers = 0.4 W.
        assert!((stack.total_power().as_watts() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_and_zero_grid() {
        assert!(StackBuilder::new(mm(1.0), mm(1.0), 0, 5)
            .silicon_layer("a", um(50.0))
            .build()
            .is_err());
        assert!(basic_builder().build().is_err());
    }
}
