//! Solved temperature fields and their metrics.

use crate::assemble::Assembly;
use crate::solver::{self, SolverOptions};
use crate::stack::{Layer, Stack};
#[allow(unused_imports)]
use crate::GridSimError;
use crate::Result;
use liquamod_units::{Power, Temperature, TemperatureDifference};

/// Kind of a layer in a [`ThermalField`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// A solid (silicon, oxide…) layer.
    Solid,
    /// A microchannel cavity (temperatures are bulk coolant).
    Cavity,
}

/// The temperature grid of one layer.
#[derive(Debug, Clone)]
pub struct LayerField {
    name: String,
    kind: LayerKind,
    nx: usize,
    nz: usize,
    temps: Vec<f64>,
}

impl LayerField {
    /// Layer name (cavities are `"<cavity>"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the layer is solid or a coolant cavity.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Grid dimensions `(nx, nz)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.nz)
    }

    /// Temperature of cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn cell(&self, i: usize, j: usize) -> Temperature {
        assert!(i < self.nx && j < self.nz, "cell index out of range");
        Temperature::from_kelvin(self.temps[j * self.nx + i])
    }

    /// Raw row-major kelvin samples.
    pub fn as_kelvin(&self) -> &[f64] {
        &self.temps
    }

    /// Maximum temperature in this layer.
    pub fn max(&self) -> Temperature {
        Temperature::from_kelvin(self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }

    /// Minimum temperature in this layer.
    pub fn min(&self) -> Temperature {
        Temperature::from_kelvin(self.temps.iter().copied().fold(f64::INFINITY, f64::min))
    }

    /// Mean temperature over one flow-wise row of cells at index `j`
    /// (averaged across the flow) — inlet→outlet profile extraction.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn row_mean(&self, j: usize) -> Temperature {
        assert!(j < self.nz, "row index out of range");
        let s: f64 = (0..self.nx).map(|i| self.temps[j * self.nx + i]).sum();
        Temperature::from_kelvin(s / self.nx as f64)
    }
}

/// The full solved field: one [`LayerField`] per stack layer.
#[derive(Debug, Clone)]
pub struct ThermalField {
    layers: Vec<LayerField>,
    total_power: f64,
    advected_power: f64,
}

impl ThermalField {
    /// All layers, bottom to top.
    pub fn layers(&self) -> &[LayerField] {
        &self.layers
    }

    /// Layer by index.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer(&self, l: usize) -> &LayerField {
        &self.layers[l]
    }

    /// First layer with the given name, if any.
    pub fn layer_by_name(&self, name: &str) -> Option<&LayerField> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Peak temperature over *solid* layers (the IC metric; coolant nodes are
    /// excluded).
    pub fn peak_temperature(&self) -> Temperature {
        Temperature::from_kelvin(self.solid_temps().fold(f64::NEG_INFINITY, f64::max))
    }

    /// Minimum temperature over solid layers.
    pub fn min_temperature(&self) -> Temperature {
        Temperature::from_kelvin(self.solid_temps().fold(f64::INFINITY, f64::min))
    }

    /// The paper's thermal-gradient metric: max − min silicon temperature.
    pub fn thermal_gradient(&self) -> TemperatureDifference {
        self.peak_temperature() - self.min_temperature()
    }

    fn solid_temps(&self) -> impl Iterator<Item = f64> + '_ {
        self.layers
            .iter()
            .filter(|l| l.kind == LayerKind::Solid)
            .flat_map(|l| l.temps.iter().copied())
    }

    /// Total power injected into the stack.
    pub fn total_power(&self) -> Power {
        Power::from_watts(self.total_power)
    }

    /// Heat advected out by all cavities (outlet enthalpy flux minus inlet).
    pub fn advected_power(&self) -> Power {
        Power::from_watts(self.advected_power)
    }

    /// Relative energy-balance residual `|Q_in − Q_advected|/Q_in` (or the
    /// absolute advected power when no heat is injected). Since coolant
    /// advection is the only heat exit, this residual measures solver
    /// convergence quality.
    pub fn energy_balance_residual(&self) -> f64 {
        if self.total_power.abs() < 1e-30 {
            self.advected_power.abs()
        } else {
            ((self.total_power - self.advected_power) / self.total_power).abs()
        }
    }
}

impl Stack {
    /// Solves the steady-state temperature field with default solver
    /// settings.
    ///
    /// # Errors
    ///
    /// [`GridSimError::NoConvergence`] if BiCGSTAB stalls (see
    /// [`Stack::solve_steady_with`] to loosen the controls).
    pub fn solve_steady(&self) -> Result<ThermalField> {
        self.solve_steady_with(&SolverOptions::default())
    }

    /// Solves the steady-state temperature field with explicit solver
    /// controls.
    ///
    /// # Errors
    ///
    /// [`GridSimError::NoConvergence`] if the iterative solver fails.
    pub fn solve_steady_with(&self, options: &SolverOptions) -> Result<ThermalField> {
        let asm = self.assemble();
        let x0 = vec![self.inlet.si(); asm.matrix.size()];
        let (x, _stats) = solver::bicgstab(&asm.matrix, &asm.rhs, &x0, options)?;
        Ok(self.field_from_solution(&asm, &x))
    }

    pub(crate) fn field_from_solution(&self, asm: &Assembly, x: &[f64]) -> ThermalField {
        let npl = asm.nodes_per_layer;
        let mut layers = Vec::with_capacity(self.layers.len());
        let mut advected = 0.0;
        for (l, layer) in self.layers.iter().enumerate() {
            let temps = x[l * npl..(l + 1) * npl].to_vec();
            let (name, kind) = match layer {
                Layer::Solid { name, .. } => (name.clone(), LayerKind::Solid),
                Layer::Cavity(spec) => {
                    let cv_flow = spec.coolant.volumetric_heat_capacity().si()
                        * spec.flow_rate_per_channel.si();
                    // Outlet row is the last z row; sum over channels.
                    for i in 0..self.nx {
                        let t_out = temps[(self.nz - 1) * self.nx + i];
                        advected += cv_flow * (t_out - self.inlet.si());
                    }
                    ("<cavity>".to_string(), LayerKind::Cavity)
                }
            };
            layers.push(LayerField {
                name,
                kind,
                nx: self.nx,
                nz: self.nz,
                temps,
            });
        }
        ThermalField {
            layers,
            total_power: self.total_power().as_watts(),
            advected_power: advected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{CavityWidths, StackBuilder};
    use crate::PowerMap;
    use liquamod_units::{HeatFlux, Length};

    fn mm(v: f64) -> Length {
        Length::from_millimeters(v)
    }

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn powered_stack(flux_w_cm2: f64, nx: usize, nz: usize) -> Stack {
        let p = PowerMap::uniform_flux(
            HeatFlux::from_w_per_cm2(flux_w_cm2),
            nx,
            nz,
            mm(nx as f64 * 0.1),
            mm(nz as f64 * 0.1),
        );
        StackBuilder::new(mm(nx as f64 * 0.1), mm(nz as f64 * 0.1), nx, nz)
            .silicon_layer("bottom", um(50.0))
            .powered_by(p.clone())
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("top", um(50.0))
            .powered_by(p)
            .build()
            .unwrap()
    }

    #[test]
    fn unpowered_stack_is_isothermal_at_inlet() {
        let stack = StackBuilder::new(mm(0.5), mm(1.0), 5, 10)
            .silicon_layer("bottom", um(50.0))
            .microchannel_cavity(CavityWidths::Uniform(um(50.0)))
            .silicon_layer("top", um(50.0))
            .build()
            .unwrap();
        let field = stack.solve_steady().unwrap();
        assert!((field.peak_temperature().as_kelvin() - 300.0).abs() < 1e-6);
        assert!((field.min_temperature().as_kelvin() - 300.0).abs() < 1e-6);
        assert!(field.thermal_gradient().as_kelvin().abs() < 1e-6);
    }

    #[test]
    fn powered_stack_conserves_energy() {
        let stack = powered_stack(50.0, 6, 12);
        let field = stack.solve_steady().unwrap();
        assert!(
            field.energy_balance_residual() < 1e-6,
            "residual = {}",
            field.energy_balance_residual()
        );
        assert!(field.peak_temperature().as_kelvin() > 300.0);
    }

    #[test]
    fn temperature_rises_downstream() {
        let stack = powered_stack(50.0, 4, 16);
        let field = stack.solve_steady().unwrap();
        let top = field.layer_by_name("top").unwrap();
        // Row means increase monotonically from inlet to outlet.
        for j in 1..16 {
            assert!(
                top.row_mean(j).as_kelvin() >= top.row_mean(j - 1).as_kelvin() - 1e-9,
                "row {j}"
            );
        }
        // Cavity outlet is warmer than inlet.
        let cavity = field.layer(1);
        assert!(cavity.row_mean(15).as_kelvin() > cavity.row_mean(0).as_kelvin());
    }

    #[test]
    fn hotter_flux_hotter_chip() {
        let low = powered_stack(20.0, 4, 8).solve_steady().unwrap();
        let high = powered_stack(80.0, 4, 8).solve_steady().unwrap();
        assert!(high.peak_temperature() > low.peak_temperature());
        assert!(high.thermal_gradient().as_kelvin() > low.thermal_gradient().as_kelvin());
    }

    #[test]
    fn narrow_channels_cool_better_at_fixed_flow() {
        // Same stack, channel width 10 µm vs 50 µm: narrower channels have a
        // higher film coefficient, so the silicon sits closer to the coolant.
        let p = PowerMap::uniform_flux(HeatFlux::from_w_per_cm2(100.0), 4, 8, mm(0.4), mm(0.8));
        let build = |w: f64| {
            StackBuilder::new(mm(0.4), mm(0.8), 4, 8)
                .silicon_layer("bottom", um(50.0))
                .powered_by(p.clone())
                .microchannel_cavity(CavityWidths::Uniform(um(w)))
                .silicon_layer("top", um(50.0))
                .powered_by(p.clone())
                .build()
                .unwrap()
        };
        let wide = build(50.0).solve_steady().unwrap();
        let narrow = build(10.0).solve_steady().unwrap();
        assert!(narrow.peak_temperature() < wide.peak_temperature());
    }

    #[test]
    fn field_accessors() {
        let stack = powered_stack(50.0, 4, 8);
        let field = stack.solve_steady().unwrap();
        assert_eq!(field.layers().len(), 3);
        assert_eq!(field.layer(0).dims(), (4, 8));
        assert_eq!(field.layer(1).kind(), LayerKind::Cavity);
        assert!(field.layer_by_name("missing").is_none());
        let top = field.layer_by_name("top").unwrap();
        assert!(top.cell(0, 0).as_kelvin() >= 300.0);
        assert_eq!(top.as_kelvin().len(), 32);
        assert!(top.max() >= top.min());
    }
}
