//! Iterative sparse solvers: BiCGSTAB with Jacobi preconditioning, plus a
//! Gauss–Seidel fallback for diagnostics.
//!
//! Advection makes the assembled conductance matrix nonsymmetric, ruling out
//! plain conjugate gradients; BiCGSTAB is the standard Krylov method for
//! this class of convection–diffusion systems.

use crate::sparse::CsrMatrix;
use crate::GridSimError;

/// Convergence controls for the iterative solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Relative residual target `‖b − Ax‖/‖b‖`.
    pub tolerance: f64,
    /// Iteration cap before reporting failure.
    pub max_iterations: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iterations: 20_000,
        }
    }
}

/// Outcome of a converged solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStats {
    /// Iterations used.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Solves `A·x = b` by Jacobi-preconditioned BiCGSTAB, starting from `x0`.
///
/// Returns the solution and the iteration statistics.
///
/// # Errors
///
/// [`GridSimError::NoConvergence`] if the residual target is not met within
/// the iteration cap, or the method breaks down (`ρ → 0`).
///
/// # Panics
///
/// Panics if the dimensions of `b` or `x0` disagree with `a`.
pub fn bicgstab(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    options: &SolverOptions,
) -> Result<(Vec<f64>, SolveStats), GridSimError> {
    let n = a.size();
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);

    // Jacobi preconditioner M⁻¹ = 1/diag(A) (identity where the diagonal
    // vanishes — assembly always produces positive diagonals in practice).
    let inv_diag: Vec<f64> = a
        .diagonal()
        .iter()
        .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
        .collect();

    let b_norm = norm(b).max(f64::MIN_POSITIVE);
    let mut x = x0.to_vec();
    let mut r = b.to_vec();
    let ax = a.mul(&x);
    for i in 0..n {
        r[i] -= ax[i];
    }
    let r0 = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut residual = norm(&r) / b_norm;
    if residual <= options.tolerance {
        return Ok((
            x,
            SolveStats {
                iterations: 0,
                residual,
            },
        ));
    }

    for it in 1..=options.max_iterations {
        let rho_next = dot(&r0, &r);
        if rho_next.abs() < 1e-300 {
            return Err(GridSimError::NoConvergence {
                iterations: it,
                residual,
            });
        }
        let beta = (rho_next / rho) * (alpha / omega);
        rho = rho_next;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        // Preconditioned direction.
        let p_hat: Vec<f64> = p.iter().zip(&inv_diag).map(|(pi, di)| pi * di).collect();
        a.mul_into(&p_hat, &mut v);
        alpha = rho / dot(&r0, &v);
        let s: Vec<f64> = (0..n).map(|i| r[i] - alpha * v[i]).collect();
        if norm(&s) / b_norm <= options.tolerance {
            for i in 0..n {
                x[i] += alpha * p_hat[i];
            }
            let final_res = norm(&s) / b_norm;
            return Ok((
                x,
                SolveStats {
                    iterations: it,
                    residual: final_res,
                },
            ));
        }
        let s_hat: Vec<f64> = s.iter().zip(&inv_diag).map(|(si, di)| si * di).collect();
        let t = a.mul(&s_hat);
        let tt = dot(&t, &t);
        if tt.abs() < 1e-300 {
            return Err(GridSimError::NoConvergence {
                iterations: it,
                residual,
            });
        }
        omega = dot(&t, &s) / tt;
        for i in 0..n {
            x[i] += alpha * p_hat[i] + omega * s_hat[i];
            r[i] = s[i] - omega * t[i];
        }
        residual = norm(&r) / b_norm;
        if residual <= options.tolerance {
            return Ok((
                x,
                SolveStats {
                    iterations: it,
                    residual,
                },
            ));
        }
        if omega.abs() < 1e-300 {
            return Err(GridSimError::NoConvergence {
                iterations: it,
                residual,
            });
        }
    }
    Err(GridSimError::NoConvergence {
        iterations: options.max_iterations,
        residual,
    })
}

/// Solves `A·x = b` by Gauss–Seidel sweeps. Slow but simple; retained as an
/// independent cross-check of BiCGSTAB in tests and for diagnosing
/// ill-conditioned assemblies.
///
/// # Errors
///
/// [`GridSimError::NoConvergence`] if the sweep cap is reached, and
/// [`GridSimError::InvalidStack`] if a diagonal entry is zero.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn gauss_seidel(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    options: &SolverOptions,
) -> Result<(Vec<f64>, SolveStats), GridSimError> {
    let n = a.size();
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    let diag = a.diagonal();
    if diag.contains(&0.0) {
        return Err(GridSimError::InvalidStack {
            what: "zero diagonal in system matrix".into(),
        });
    }
    let b_norm = norm(b).max(f64::MIN_POSITIVE);
    let mut x = x0.to_vec();
    for it in 1..=options.max_iterations {
        // One sweep: x_i ← (b_i − Σ_{j≠i} a_ij x_j)/a_ii, in place.
        for i in 0..n {
            let mut s = b[i];
            let mut aii = diag[i];
            for k in a.row_range(i) {
                let j = a.col_at(k);
                if j == i {
                    aii = a.value_at(k);
                } else {
                    s -= a.value_at(k) * x[j];
                }
            }
            x[i] = s / aii;
        }
        let ax = a.mul(&x);
        let res: f64 = (0..n).map(|i| (b[i] - ax[i]).powi(2)).sum::<f64>().sqrt() / b_norm;
        if res <= options.tolerance {
            return Ok((
                x,
                SolveStats {
                    iterations: it,
                    residual: res,
                },
            ));
        }
    }
    let ax = a.mul(&x);
    let res: f64 = (0..n).map(|i| (b[i] - ax[i]).powi(2)).sum::<f64>().sqrt() / b_norm;
    Err(GridSimError::NoConvergence {
        iterations: options.max_iterations,
        residual: res,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletMatrix;

    /// 1D Poisson matrix with Dirichlet-ish anchoring on the first node.
    fn poisson(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n);
        for i in 0..n {
            t.add(i, i, 2.0 + if i == 0 { 1.0 } else { 0.0 });
            if i > 0 {
                t.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    /// Nonsymmetric convection–diffusion-like matrix.
    fn advective(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n);
        for i in 0..n {
            t.add(i, i, 3.0);
            if i > 0 {
                t.add(i, i - 1, -2.0); // upwind
            }
            if i + 1 < n {
                t.add(i, i + 1, -0.5);
            }
        }
        t.to_csr()
    }

    #[test]
    fn bicgstab_solves_spd() {
        let a = poisson(50);
        let x_true: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.3).sin()).collect();
        let b = a.mul(&x_true);
        let (x, stats) = bicgstab(&a, &b, &vec![0.0; 50], &SolverOptions::default()).unwrap();
        for i in 0..50 {
            assert!((x[i] - x_true[i]).abs() < 1e-7, "x[{i}]");
        }
        assert!(stats.iterations < 200);
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        let a = advective(80);
        let x_true: Vec<f64> = (0..80).map(|i| 1.0 + (i % 7) as f64).collect();
        let b = a.mul(&x_true);
        let (x, _) = bicgstab(&a, &b, &vec![0.0; 80], &SolverOptions::default()).unwrap();
        for i in 0..80 {
            assert!(
                (x[i] - x_true[i]).abs() < 1e-6,
                "x[{i}] = {} vs {}",
                x[i],
                x_true[i]
            );
        }
    }

    #[test]
    fn bicgstab_zero_rhs_is_immediate() {
        let a = poisson(10);
        let (x, stats) = bicgstab(&a, &[0.0; 10], &[0.0; 10], &SolverOptions::default()).unwrap();
        assert!(x.iter().all(|&v| v == 0.0));
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn bicgstab_respects_iteration_cap() {
        let a = poisson(100);
        let b = vec![1.0; 100];
        let err = bicgstab(
            &a,
            &b,
            &vec![0.0; 100],
            &SolverOptions {
                tolerance: 1e-14,
                max_iterations: 2,
            },
        );
        assert!(matches!(err, Err(GridSimError::NoConvergence { .. })));
    }

    #[test]
    fn gauss_seidel_agrees_with_bicgstab() {
        let a = advective(40);
        let x_true: Vec<f64> = (0..40).map(|i| (i as f64 * 0.11).cos()).collect();
        let b = a.mul(&x_true);
        let opts = SolverOptions {
            tolerance: 1e-11,
            max_iterations: 100_000,
        };
        let (xg, _) = gauss_seidel(&a, &b, &vec![0.0; 40], &opts).unwrap();
        let (xb, _) = bicgstab(&a, &b, &vec![0.0; 40], &opts).unwrap();
        for i in 0..40 {
            assert!((xg[i] - xb[i]).abs() < 1e-7, "x[{i}]");
        }
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let a = poisson(200);
        let x_true: Vec<f64> = (0..200).map(|i| (i as f64 * 0.05).sin()).collect();
        let b = a.mul(&x_true);
        let opts = SolverOptions::default();
        let (_, cold) = bicgstab(&a, &b, &vec![0.0; 200], &opts).unwrap();
        let mut warm_guess = x_true.clone();
        warm_guess.iter_mut().for_each(|v| *v += 1e-6);
        let (_, warm) = bicgstab(&a, &b, &warm_guess, &opts).unwrap();
        assert!(warm.iterations <= cold.iterations);
    }
}
