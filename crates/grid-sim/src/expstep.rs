//! Condensed exponential-integrator stepper backend.
//!
//! Backward Euler (the default backend, [`crate::TransientOptions`]) pays an
//! iterative linear solve per step. This module trades that for a one-time
//! propagator factorization per width profile, after which every step is a
//! restriction, one dense matrix–vector product, and a prolongation —
//! O(n) in the fine grid plus O(m²) in the (much smaller) condensed
//! dimension.
//!
//! The full system `C·dT/dt = −A·T + p` is Galerkin-aggregated onto coarse
//! cells (per layer, `x_cells × z_cells` blocks) with piecewise-constant
//! prolongation `P`: `A_r = Pᵀ A P`, `C_r = Pᵀ C P`, `p_r = Pᵀ p`. The
//! condensed ODE `dT_r/dt = −M·T_r + b` (with `M = C_r^{−1} A_r`,
//! `b = C_r^{−1} p_r`) is *linear with constant coefficients between
//! rebuilds*, so it has the exact one-step solution
//!
//! ```text
//! T_r(Δt) = E·T_r(0) + g,   E = e^{−M·Δt},   g = Δt·φ₁(−M·Δt)·b
//! ```
//!
//! with `φ₁(z) = (eᶻ−1)/z` extended by `φ₁(0) = 1` (so a singular `M` —
//! e.g. a stack with no heat-removal path — needs no special casing).
//! `E` and `g` are computed **once per width profile** from the matrix
//! exponential of the augmented matrix `[[−M·Δt, Δt²·b], [0, 0]]`
//! (top-left block `E`, top-right column `g`; Higham's trick for φ-
//! functions) by Taylor series with scaling-and-squaring. Advection is
//! *inside* the condensed operator — the earlier prototype that split
//! advection from conduction to keep the operator symmetric lost ~25 % of
//! the peak rise at Δt = 1 ms, because the coolant transit time is far
//! below Δt and the split lets coolant flush unheated; the nonsymmetric
//! condensed exponential has no such splitting error. A symmetric
//! eigendecomposition (the SDTA-exemplar route) is therefore not
//! applicable here; scaling-and-squaring is the robust equivalent for the
//! nonsymmetric operator and is likewise paid once per width profile.
//!
//! Each step applies the coarse update to the fine grid as a correction,
//! `T ← T + P·(T_r(Δt) − T_r(0))` with `T_r(0)` the capacitance-weighted
//! restriction of the current fine state, so the fine field keeps its
//! within-cell structure while the cell means follow the exact condensed
//! dynamics. The exponential is unconditionally stable (exact propagator
//! of a dissipative operator); errors come from the condensation alone —
//! at `x_cells ≥ nx, z_cells ≥ nz` the condensation is exact and the
//! backend integrates the full system exactly in time, making it *more*
//! accurate than backward Euler at any Δt. Backward Euler on the full
//! grid remains the reference the cross-check tests in `transient` gate
//! against.

use crate::assemble::Assembly;
use crate::stack::Stack;
use crate::{GridSimError, Result};

/// Coarsening resolution for the condensed exponential stepper
/// ([`crate::StepperKind::Exponential`]).
///
/// Each layer is aggregated onto an `x_cells × z_cells` coarse grid (both
/// clamped to the stack's fine resolution), so the condensed dimension is
/// `n_layers · min(x_cells, nx) · min(z_cells, nz)`. Setting both at or
/// above the fine resolution makes the condensation exact (one fine node
/// per coarse cell), leaving no spatial approximation at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExponentialOptions {
    /// Coarse cells across the flow, per layer.
    pub x_cells: usize,
    /// Coarse cells along the flow, per layer.
    pub z_cells: usize,
}

impl Default for ExponentialOptions {
    fn default() -> Self {
        Self {
            x_cells: 8,
            z_cells: 4,
        }
    }
}

/// The factorized condensed propagator — built once per (stack, Δt),
/// reused by every step. See the module docs for the derivation.
#[derive(Debug)]
pub(crate) struct CondensedExp {
    /// Fine node → condensed cell (length n).
    cell_of: Vec<usize>,
    /// Condensed capacitances `C_r` (length m) — the restriction weights.
    cap_r: Vec<f64>,
    /// One-step propagator `E = e^{−M·Δt}`, row-major m×m.
    propagator: Vec<f64>,
    /// Constant one-step forcing `g = Δt·φ₁(−M·Δt)·C_r^{−1}·p_r` (length m).
    forcing: Vec<f64>,
    /// Scratch (length m each): restricted state and propagated state.
    t_r0: Vec<f64>,
    t_r1: Vec<f64>,
}

impl CondensedExp {
    /// Builds the condensed propagator for `stack`/`asm` at step `dt`.
    pub(crate) fn build(
        stack: &Stack,
        asm: &Assembly,
        options: &ExponentialOptions,
        dt: f64,
    ) -> Result<Self> {
        if options.x_cells == 0 || options.z_cells == 0 {
            return Err(GridSimError::InvalidTransient {
                what: format!(
                    "exponential stepper needs x_cells/z_cells >= 1, got {} x {}",
                    options.x_cells, options.z_cells
                ),
            });
        }
        let (nx, nz) = stack.dims();
        let n_layers = stack.n_layers();
        let npl = nx * nz;
        let n = n_layers * npl;
        let xc = options.x_cells.min(nx);
        let zc = options.z_cells.min(nz);
        let m = n_layers * xc * zc;

        // Fine → coarse map: balanced index groups per axis; cells never
        // straddle a layer.
        let mut cell_of = vec![0usize; n];
        for l in 0..n_layers {
            for j in 0..nz {
                for i in 0..nx {
                    cell_of[l * npl + j * nx + i] =
                        l * (xc * zc) + (j * zc / nz) * xc + i * xc / nx;
                }
            }
        }

        let mut cap_r = vec![0.0; m];
        for (node, &c) in asm.capacitance.iter().enumerate() {
            cap_r[cell_of[node]] += c;
        }

        // Galerkin aggregates: A_r = Pᵀ A P (advection included), p_r = Pᵀ p.
        let mut a_r = vec![0.0; m * m];
        for row in 0..n {
            let c = cell_of[row];
            for (col, v) in asm.matrix.row_entries(row) {
                a_r[c * m + cell_of[col]] += v;
            }
        }
        let mut p_r = vec![0.0; m];
        for (node, &p) in asm.rhs.iter().enumerate() {
            p_r[cell_of[node]] += p;
        }

        // Augmented generator [[−M·Δt, Δt²·b], [0, 0]] with M = C_r^{−1}A_r,
        // b = C_r^{−1}p_r; its exponential holds E top-left and g top-right.
        let w = m + 1;
        let mut gen = vec![0.0; w * w];
        for r in 0..m {
            for c in 0..m {
                gen[r * w + c] = -a_r[r * m + c] * dt / cap_r[r];
            }
            gen[r * w + m] = dt * dt * p_r[r] / cap_r[r];
        }
        let exp = expm(&gen, w);
        let mut propagator = vec![0.0; m * m];
        let mut forcing = vec![0.0; m];
        for r in 0..m {
            propagator[r * m..(r + 1) * m].copy_from_slice(&exp[r * w..r * w + m]);
            forcing[r] = exp[r * w + m] / dt;
        }

        Ok(Self {
            cell_of,
            cap_r,
            propagator,
            forcing,
            t_r0: vec![0.0; m],
            t_r1: vec![0.0; m],
        })
    }

    /// Advances `temps` (fine-grid state, kelvin) by one Δt in place:
    /// restrict, propagate exactly in the condensed space, prolong the
    /// coarse correction.
    pub(crate) fn advance(&mut self, temps: &mut [f64], caps: &[f64]) {
        let m = self.cap_r.len();
        // Restrict: capacitance-weighted mean per coarse cell.
        self.t_r0.fill(0.0);
        for (node, (&t, &c)) in temps.iter().zip(caps).enumerate() {
            self.t_r0[self.cell_of[node]] += c * t;
        }
        for (tr, &cr) in self.t_r0.iter_mut().zip(&self.cap_r) {
            *tr /= cr;
        }
        // Exact condensed step: T_r(Δt) = E·T_r(0) + g.
        for r in 0..m {
            let row = &self.propagator[r * m..(r + 1) * m];
            self.t_r1[r] =
                row.iter().zip(&self.t_r0).map(|(e, t)| e * t).sum::<f64>() + self.forcing[r];
        }
        // Prolong the coarse *change* onto the fine grid.
        for (node, t) in temps.iter_mut().enumerate() {
            let cell = self.cell_of[node];
            *t += self.t_r1[cell] - self.t_r0[cell];
        }
    }
}

/// Dense matrix exponential `e^A` (row-major n×n) by Taylor series with
/// scaling-and-squaring: `A` is scaled by `2^{−s}` until its ∞-norm is at
/// most 0.5, the series is summed to machine precision (term 18 of a
/// norm-0.5 series is ~1e-18), and the result is squared `s` times.
/// Deterministic (fixed term count and loop order), which keeps the
/// exponential backend bitwise reproducible across runs and worker counts.
fn expm(a: &[f64], n: usize) -> Vec<f64> {
    let norm = (0..n)
        .map(|r| a[r * n..(r + 1) * n].iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0f64, f64::max);
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scale = 0.5f64.powi(s as i32);
    let scaled: Vec<f64> = a.iter().map(|v| v * scale).collect();

    // e^X = Σ X^k/k!, accumulated term by term.
    let mut result = vec![0.0; n * n];
    for r in 0..n {
        result[r * n + r] = 1.0;
    }
    let mut term = result.clone();
    for k in 1..=18u32 {
        term = mat_mul(&term, &scaled, n);
        let inv_k = 1.0 / f64::from(k);
        for v in &mut term {
            *v *= inv_k;
        }
        for (res, t) in result.iter_mut().zip(&term) {
            *res += t;
        }
    }
    for _ in 0..s {
        result = mat_mul(&result, &result, n);
    }
    result
}

/// Row-major dense n×n product `a·b`.
fn mat_mul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for r in 0..n {
        let arow = &a[r * n..(r + 1) * n];
        let orow = &mut out[r * n..(r + 1) * n];
        for (k, &ark) in arow.iter().enumerate() {
            if ark == 0.0 {
                continue;
            }
            let brow = &b[k * n..(k + 1) * n];
            for (o, &bkc) in orow.iter_mut().zip(brow) {
                *o += ark * bkc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expm_of_diagonal_is_elementwise_exp() {
        let a = vec![2.0, 0.0, 0.0, -3.0];
        let e = expm(&a, 2);
        assert!((e[0] - 2.0f64.exp()).abs() < 1e-12 * 2.0f64.exp());
        assert!((e[3] - (-3.0f64).exp()).abs() < 1e-14);
        assert!(e[1].abs() < 1e-15 && e[2].abs() < 1e-15);
    }

    #[test]
    fn expm_of_nilpotent_is_exact() {
        // exp([[0, a], [0, 0]]) = [[1, a], [0, 1]].
        let a = vec![0.0, 7.5, 0.0, 0.0];
        let e = expm(&a, 2);
        assert_eq!(e[0], 1.0);
        assert!((e[1] - 7.5).abs() < 1e-12);
        assert_eq!(e[2], 0.0);
        assert_eq!(e[3], 1.0);
    }

    #[test]
    fn expm_matches_scalar_decay_with_forcing() {
        // The augmented trick on the scalar ODE T' = −λT + b: the top row
        // of exp([[−λΔt, Δt²b], [0, 0]]) must be [e^{−λΔt}, Δt·g] with
        // g/Δt… i.e. forcing = Δt·φ₁(−λΔt)·b, so after one step from T₀
        // the exact solution T(Δt) = T∞ + e^{−λΔt}(T₀ − T∞) is recovered.
        let (lambda, b, dt, t0) = (350.0, 1.7e4, 2e-3, 300.0);
        let gen = vec![-lambda * dt, dt * dt * b, 0.0, 0.0];
        let e = expm(&gen, 2);
        let prop = e[0];
        let forcing = e[1] / dt;
        let stepped = prop * t0 + forcing;
        let t_inf = b / lambda;
        let exact = t_inf + (-lambda * dt).exp() * (t0 - t_inf);
        assert!(
            (stepped - exact).abs() < 1e-10 * exact.abs(),
            "{stepped} vs {exact}"
        );
    }

    #[test]
    fn expm_inverse_pair_multiplies_to_identity() {
        // e^A·e^{−A} = I for a non-normal matrix exercises the squaring path.
        let a = vec![0.3, 2.0, 0.0, -0.4, 0.1, 1.0, 0.0, 0.0, -0.2];
        let neg: Vec<f64> = a.iter().map(|v| -v).collect();
        let prod = mat_mul(&expm(&a, 3), &expm(&neg, 3), 3);
        for r in 0..3 {
            for c in 0..3 {
                let want = if r == c { 1.0 } else { 0.0 };
                assert!((prod[r * 3 + c] - want).abs() < 1e-13);
            }
        }
    }
}
