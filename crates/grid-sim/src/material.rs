//! Solid material properties.

use liquamod_units::{ThermalConductivity, VolumetricHeatCapacity};

/// A solid material in the 3D stack.
#[derive(Debug, Clone, PartialEq)]
pub struct Material {
    name: String,
    thermal_conductivity: ThermalConductivity,
    volumetric_heat_capacity: VolumetricHeatCapacity,
}

impl Material {
    /// Creates a material from its properties.
    ///
    /// # Panics
    ///
    /// Panics if either property is not strictly positive and finite — the
    /// built-in presets are the expected construction path; custom materials
    /// are a deliberate, validated act.
    pub fn new(
        name: impl Into<String>,
        thermal_conductivity: ThermalConductivity,
        volumetric_heat_capacity: VolumetricHeatCapacity,
    ) -> Self {
        let k = thermal_conductivity.si();
        let c = volumetric_heat_capacity.si();
        assert!(
            k.is_finite() && k > 0.0,
            "thermal conductivity must be positive"
        );
        assert!(
            c.is_finite() && c > 0.0,
            "volumetric heat capacity must be positive"
        );
        Self {
            name: name.into(),
            thermal_conductivity,
            volumetric_heat_capacity,
        }
    }

    /// Bulk silicon at the paper's value `k = 130 W/(m·K)`;
    /// `c = 1.66 MJ/(m³·K)`.
    pub fn silicon() -> Self {
        Self::new(
            "silicon",
            ThermalConductivity::from_w_per_m_k(130.0),
            VolumetricHeatCapacity::from_j_per_m3_k(1.66e6),
        )
    }

    /// Silicon dioxide (BEOL dielectric proxy): `k = 1.4 W/(m·K)`,
    /// `c = 1.54 MJ/(m³·K)`.
    pub fn silicon_dioxide() -> Self {
        Self::new(
            "silicon dioxide",
            ThermalConductivity::from_w_per_m_k(1.4),
            VolumetricHeatCapacity::from_j_per_m3_k(1.54e6),
        )
    }

    /// Copper (TSV/interconnect proxy): `k = 400 W/(m·K)`,
    /// `c = 3.43 MJ/(m³·K)`.
    pub fn copper() -> Self {
        Self::new(
            "copper",
            ThermalConductivity::from_w_per_m_k(400.0),
            VolumetricHeatCapacity::from_j_per_m3_k(3.43e6),
        )
    }

    /// Material name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Thermal conductivity.
    pub fn thermal_conductivity(&self) -> ThermalConductivity {
        self.thermal_conductivity
    }

    /// Volumetric heat capacity (used by transient simulation).
    pub fn volumetric_heat_capacity(&self) -> VolumetricHeatCapacity {
        self.volumetric_heat_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(Material::silicon().thermal_conductivity().si(), 130.0);
        assert_eq!(Material::copper().name(), "copper");
        assert!(Material::silicon_dioxide().thermal_conductivity().si() < 2.0);
    }

    #[test]
    #[should_panic(expected = "thermal conductivity")]
    fn rejects_zero_conductivity() {
        let _ = Material::new(
            "bad",
            ThermalConductivity::from_w_per_m_k(0.0),
            VolumetricHeatCapacity::from_j_per_m3_k(1.0e6),
        );
    }

    #[test]
    #[should_panic(expected = "heat capacity")]
    fn rejects_nan_capacity() {
        let _ = Material::new(
            "bad",
            ThermalConductivity::from_w_per_m_k(1.0),
            VolumetricHeatCapacity::from_j_per_m3_k(f64::NAN),
        );
    }
}
